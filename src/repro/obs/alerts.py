"""Declarative alert rules evaluated against the live observability plane.

Operators describe what "trouble" looks like in ``.archex/alerts.toml``;
the :class:`AlertEngine` evaluates the rules against the process-global
metrics registry, the run registry, and the registered ``/healthz``
sources, and the ObsServer background loop re-evaluates periodically.
Firing alerts surface in three places at once: ``GET /api/alerts`` (for
dashboards, including ``repro top``), the ``/healthz`` document (the
``alerts`` source reports ``degraded: true``, flipping the probe's
top-level status), and the structured obslog (``alert.fired`` /
``alert.resolved`` edge events).

Rule types (``type =`` in each ``[[rule]]`` table):

``threshold``
    Compare a metric (``metric = "engine.jobs.completed"``; histogram
    names take a statistic suffix — ``engine.job.seconds.p95``) or a
    ``/healthz`` field (``source = "health"``, ``key =
    "queue.queue_depth"``) against ``value`` with ``op``.
``rate_of_change``
    Per-second growth of a counter/gauge over a trailing ``window``
    seconds exceeds ``threshold``.
``slo_burn``
    Error-budget burn rate: the failure ratio ``bad / total`` (two
    counters) over the trailing window, divided by the budget
    ``1 - objective``, exceeds ``burn``. A burn rate of 1.0 spends the
    budget exactly at the objective's pace; 10x eats a month's budget in
    three days.
``stuck_lease``
    A queue health source reports an ``oldest_lease_age`` older than
    ``ttl`` seconds — a worker died without releasing its lease.
``heartbeat_silence``
    An active registered run has not updated its progress for ``window``
    seconds — a hung loop that still holds its registration.
``bench_sentinel``
    The newest entry of a ``BENCH_history.jsonl`` series regresses
    against the median/MAD baseline (:func:`repro.bench.compare_history`).

Each rule fires at most one alert per evaluation — the acceptance
contract dashboards rely on to count incidents, not spam.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Union

from . import obslog as _obslog
from .metrics import (
    counter as _counter,
    quantile_from_snapshot,
    registry as _metrics_registry,
)

__all__ = [
    "DEFAULT_RULES_PATH",
    "AlertRule",
    "AlertEngine",
    "load_alert_rules",
    "parse_alert_rules",
]

#: Default rules file, next to the run store and warehouse.
DEFAULT_RULES_PATH = Path(".archex") / "alerts.toml"

RULE_TYPES = (
    "threshold",
    "rate_of_change",
    "slo_burn",
    "stuck_lease",
    "heartbeat_silence",
    "bench_sentinel",
)

SEVERITIES = ("info", "warning", "critical")

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

#: Histogram statistic suffixes accepted on ``metric`` specs.
_STATS = ("p50", "p90", "p95", "p99", "mean", "count", "sum", "min", "max",
          "value")


@dataclass
class AlertRule:
    """One declarative rule; ``params`` holds the type-specific knobs."""

    name: str
    type: str
    severity: str = "warning"
    description: str = ""
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.type not in RULE_TYPES:
            raise ValueError(
                f"unknown alert rule type {self.type!r} for {self.name!r};"
                f" choose from {RULE_TYPES}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r} for {self.name!r};"
                f" choose from {SEVERITIES}"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.type,
            "severity": self.severity,
            "description": self.description,
            "params": dict(self.params),
        }


def _resolve_metric(
    snapshot: Dict[str, Dict[str, Any]], spec: str
) -> Optional[float]:
    """Value of a ``metric`` spec against a registry snapshot.

    ``"a.b.c"`` reads instrument ``a.b.c`` (counter/gauge value,
    histogram mean); ``"a.b.c.p95"`` strips a trailing statistic suffix
    and reads that statistic of histogram ``a.b.c``.
    """
    stat = None
    name = spec
    if name not in snapshot and "." in name:
        base, _, tail = name.rpartition(".")
        if tail in _STATS:
            name, stat = base, tail
    data = snapshot.get(name)
    if data is None:
        return None
    kind = data.get("kind")
    if kind in ("counter", "gauge"):
        value = data.get("value")
        return float(value) if isinstance(value, (int, float)) else None
    if kind == "histogram":
        if stat in (None, "mean"):
            return data.get("mean")
        if stat in ("count", "sum", "min", "max"):
            return data.get(stat)
        if stat and stat.startswith("p"):
            return quantile_from_snapshot(data, int(stat[1:]) / 100.0)
    return None


def _resolve_health(doc: Dict[str, Any], key: str) -> Any:
    """Dotted-path lookup into the ``/healthz`` document."""
    node: Any = doc
    for part in key.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


class _RuleState:
    """Per-rule evaluation state: trailing samples and the firing edge."""

    __slots__ = ("samples", "firing", "since", "message", "value",
                 "bench_mtime", "bench_verdict")

    def __init__(self) -> None:
        self.samples: Deque[Tuple[float, float]] = deque()
        self.firing = False
        self.since: Optional[float] = None
        self.message = ""
        self.value: Optional[float] = None
        self.bench_mtime: Optional[float] = None
        self.bench_verdict: Optional[Tuple[bool, str, Optional[float]]] = None


class AlertEngine:
    """Evaluates a rule set against live registries; tracks firing edges."""

    def __init__(
        self,
        rules: List[AlertRule],
        metrics=None,
        runs=None,
        health: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.rules = list(rules)
        self._metrics = metrics
        self._runs = runs
        self._health = health
        self._states = {rule.name: _RuleState() for rule in self.rules}
        self._lock = threading.Lock()
        self._evaluated_at: Optional[float] = None

    # ------------------------------------------------------------------
    # evaluation

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Evaluate every rule once; returns the currently firing alerts.

        Rising edges emit ``alert.fired`` obslog events and tick the
        ``obs.alerts.fired`` counter; falling edges emit
        ``alert.resolved``. A rule whose inputs are missing (metric not
        yet registered, health source gone) simply does not fire.
        """
        if now is None:
            now = time.time()
        from .server import health_snapshot as _health_snapshot

        snapshot = (
            self._metrics if self._metrics is not None else _metrics_registry()
        ).snapshot()
        health = (
            self._health() if self._health is not None else _health_snapshot()
        )
        with self._lock:
            for rule in self.rules:
                state = self._states[rule.name]
                try:
                    firing, message, value = self._evaluate_rule(
                        rule, state, snapshot, health, now
                    )
                except Exception as exc:
                    firing, message, value = False, "", None
                    _obslog.log(
                        "alert.rule_error", level="warning",
                        rule=rule.name, error=repr(exc),
                    )
                self._apply_edge(rule, state, firing, message, value, now)
            self._evaluated_at = now
            return self._firing_locked()

    def _apply_edge(
        self,
        rule: AlertRule,
        state: _RuleState,
        firing: bool,
        message: str,
        value: Optional[float],
        now: float,
    ) -> None:
        if firing and not state.firing:
            state.since = now
            _counter("obs.alerts.fired").inc()
            _obslog.log(
                "alert.fired", level="warning", rule=rule.name,
                severity=rule.severity, message=message, value=value,
            )
        elif not firing and state.firing:
            _counter("obs.alerts.resolved").inc()
            _obslog.log(
                "alert.resolved", rule=rule.name,
                duration=round(now - (state.since or now), 3),
            )
            state.since = None
        state.firing = firing
        state.message = message
        state.value = value

    def _evaluate_rule(
        self,
        rule: AlertRule,
        state: _RuleState,
        snapshot: Dict[str, Dict[str, Any]],
        health: Dict[str, Any],
        now: float,
    ) -> Tuple[bool, str, Optional[float]]:
        p = rule.params
        if rule.type == "threshold":
            return self._eval_threshold(rule, snapshot, health)
        if rule.type == "rate_of_change":
            metric = str(p["metric"])
            window = float(p.get("window", 60.0))
            threshold = float(p["threshold"])
            value = _resolve_metric(snapshot, metric)
            if value is None:
                state.samples.clear()
                return False, "", None
            state.samples.append((now, value))
            while state.samples and state.samples[0][0] < now - window:
                state.samples.popleft()
            if len(state.samples) < 2:
                return False, "", None
            t0, v0 = state.samples[0]
            span = now - t0
            rate = (value - v0) / span if span > 0 else 0.0
            if abs(rate) > threshold:
                return (
                    True,
                    f"{metric} changing {rate:+.4g}/s over {span:.0f}s"
                    f" (threshold {threshold:g}/s)",
                    rate,
                )
            return False, "", rate
        if rule.type == "slo_burn":
            bad = _resolve_metric(snapshot, str(p["bad"]))
            total = _resolve_metric(snapshot, str(p["total"]))
            window = float(p.get("window", 300.0))
            objective = float(p.get("objective", 0.99))
            burn_limit = float(p.get("burn", 1.0))
            if bad is None or total is None:
                state.samples.clear()
                return False, "", None
            state.samples.append((now, bad, total))  # type: ignore[arg-type]
            while state.samples and state.samples[0][0] < now - window:
                state.samples.popleft()
            first = state.samples[0]
            d_bad = bad - first[1]
            d_total = total - first[2]  # type: ignore[misc]
            if d_total <= 0:
                return False, "", 0.0
            budget = max(1.0 - objective, 1e-12)
            burn = (d_bad / d_total) / budget
            if burn > burn_limit:
                return (
                    True,
                    f"error budget burning {burn:.2f}x (objective"
                    f" {objective:g}, {d_bad:.0f}/{d_total:.0f} bad over"
                    f" {now - first[0]:.0f}s)",
                    burn,
                )
            return False, "", burn
        if rule.type == "stuck_lease":
            source = str(p.get("source", "queue"))
            ttl = float(p.get("ttl", 60.0))
            age = _resolve_health(health, f"{source}.oldest_lease_age")
            if not isinstance(age, (int, float)):
                return False, "", None
            if age > ttl:
                return (
                    True,
                    f"oldest {source} lease is {age:.0f}s old"
                    f" (ttl {ttl:g}s) — worker lost?",
                    float(age),
                )
            return False, "", float(age)
        if rule.type == "heartbeat_silence":
            window = float(p.get("window", 120.0))
            from .server import run_registry as _run_registry

            runs = self._runs if self._runs is not None else _run_registry()
            silent = []
            for run in runs.active():
                updated = run.get("updated_at") or run.get("started_at")
                if isinstance(updated, (int, float)) and \
                        now - updated > window:
                    silent.append((run.get("run_id", "?"), now - updated))
            if silent:
                run_id, age = max(silent, key=lambda item: item[1])
                return (
                    True,
                    f"{len(silent)} run(s) silent > {window:g}s"
                    f" (worst: {run_id} at {age:.0f}s)",
                    age,
                )
            return False, "", None
        if rule.type == "bench_sentinel":
            return self._eval_bench(rule, state)
        raise ValueError(f"unhandled rule type {rule.type!r}")

    def _eval_threshold(
        self,
        rule: AlertRule,
        snapshot: Dict[str, Dict[str, Any]],
        health: Dict[str, Any],
    ) -> Tuple[bool, str, Optional[float]]:
        p = rule.params
        op = str(p.get("op", ">"))
        if op not in _OPS:
            raise ValueError(f"unknown op {op!r}; choose from {sorted(_OPS)}")
        limit = float(p["value"])
        if p.get("source") == "health":
            spec = str(p["key"])
            raw = _resolve_health(health, spec)
            value = float(raw) if isinstance(raw, (int, float)) else None
        else:
            spec = str(p["metric"])
            value = _resolve_metric(snapshot, spec)
        if value is None:
            return False, "", None
        if _OPS[op](value, limit):
            return True, f"{spec} = {value:g} (breach: {op} {limit:g})", value
        return False, "", value

    def _eval_bench(
        self, rule: AlertRule, state: _RuleState
    ) -> Tuple[bool, str, Optional[float]]:
        p = rule.params
        path = Path(p.get("history", "BENCH_history.jsonl"))
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return False, "", None
        if state.bench_mtime == mtime and state.bench_verdict is not None:
            return state.bench_verdict
        from ..bench import compare_history, read_history

        entries = read_history(path, profile=p.get("profile"))
        verdict: Tuple[bool, str, Optional[float]] = (False, "", None)
        if len(entries) >= 2:
            verdicts = compare_history(
                entries[-1], entries[:-1],
                threshold=float(p.get("threshold", 0.5)),
            )
            regressions = [
                v for v in verdicts if v["status"] == "regression"
            ]
            if regressions:
                worst = max(
                    regressions,
                    key=lambda v: v.get("ratio") or 0.0,
                )
                verdict = (
                    True,
                    f"{len(regressions)} bench regression(s); worst"
                    f" {worst['metric']} at {worst['ratio']:.2f}x median",
                    worst.get("ratio"),
                )
        state.bench_mtime = mtime
        state.bench_verdict = verdict
        return verdict

    # ------------------------------------------------------------------
    # views

    def _firing_locked(self) -> List[Dict[str, Any]]:
        out = []
        for rule in self.rules:
            state = self._states[rule.name]
            if not state.firing:
                continue
            out.append({
                "rule": rule.name,
                "severity": rule.severity,
                "type": rule.type,
                "message": state.message,
                "value": state.value,
                "since": state.since,
                "description": rule.description,
            })
        return out

    def firing(self) -> List[Dict[str, Any]]:
        with self._lock:
            return self._firing_locked()

    def snapshot(self) -> Dict[str, Any]:
        """The ``GET /api/alerts`` document."""
        with self._lock:
            return {
                "evaluated_at": self._evaluated_at,
                "rules": [r.as_dict() for r in self.rules],
                "firing": self._firing_locked(),
            }

    def health(self) -> Dict[str, Any]:
        """The ``alerts`` health source: degraded while anything fires."""
        with self._lock:
            firing = self._firing_locked()
        doc: Dict[str, Any] = {
            "rules": len(self.rules),
            "firing": len(firing),
            "degraded": bool(firing),
        }
        if firing:
            doc["alerts"] = [f["rule"] for f in firing]
        return doc


# ----------------------------------------------------------------------
# rule loading


def parse_alert_rules(text: str) -> List[AlertRule]:
    """Parse ``[[rule]]`` tables out of a TOML document.

    Uses :mod:`tomllib` when available (Python >= 3.11); otherwise a
    minimal line-oriented fallback that understands exactly the subset
    alert files use — ``[[rule]]`` headers and ``key = value`` pairs with
    string/number/boolean values.
    """
    try:
        import tomllib
    except ImportError:  # Python 3.10
        doc = _parse_toml_minimal(text)
    else:
        doc = tomllib.loads(text)
    rules = []
    for entry in doc.get("rule", []):
        if not isinstance(entry, dict):
            continue
        entry = dict(entry)
        name = str(entry.pop("name", f"rule-{len(rules) + 1}"))
        rtype = str(entry.pop("type", "threshold"))
        severity = str(entry.pop("severity", "warning"))
        description = str(entry.pop("description", ""))
        rules.append(AlertRule(
            name=name, type=rtype, severity=severity,
            description=description, params=entry,
        ))
    return rules


def load_alert_rules(
    path: Union[str, Path] = DEFAULT_RULES_PATH,
) -> List[AlertRule]:
    """Load rules from a TOML file; a missing file is an empty rule set."""
    path = Path(path)
    if not path.exists():
        return []
    return parse_alert_rules(path.read_text(encoding="utf-8"))


def _parse_toml_minimal(text: str) -> Dict[str, Any]:
    """The tiny TOML subset fallback (``[[rule]]`` + scalar pairs)."""
    doc: Dict[str, Any] = {}
    current: Optional[Dict[str, Any]] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            table = line[2:-2].strip()
            current = {}
            doc.setdefault(table, []).append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            current = None  # plain tables unsupported; skip their keys
            continue
        if "=" not in line or current is None:
            continue
        key, _, value = line.partition("=")
        current[key.strip()] = _parse_toml_scalar(value.strip())
    return doc


def _parse_toml_scalar(token: str) -> Any:
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return token[1:-1]
    if token in ("true", "false"):
        return token == "true"
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token
