"""Per-worker telemetry spools and the coordinator-side collector.

Queue workers run in their own processes (often started by an operator,
not the coordinator), so nothing ships their spans, metric deltas, or
log records home by itself. Each worker appends those events to one
JSONL *spool file* next to its leases —
``<queue-dir>/spools/worker-<pid>.jsonl`` — buffered in memory and
flushed on every heartbeat and before each result is published, so the
coordinator never sees a result whose telemetry is still in flight.

The coordinator side is :class:`SpoolCollector`: it tail-reads every
spool incrementally (tracking per-file byte offsets, consuming only
complete lines), folds metric deltas into the process-global registry
and a per-worker accumulator, forwards span records to the active
tracer for stitching, and re-emits everything into the run's telemetry
journal. ``iter_queue`` polls it during the drain loop; the final
:meth:`SpoolCollector.drain` sweep runs after the workers stop.

Spool event kinds:

* ``worker_span`` — one :func:`repro.obs.tracer.span_record`;
* ``metrics_snapshot`` — a registry *delta* since the worker's previous
  ship (counters/histograms subtract, gauges carry last writes), the
  same event shape pool workers emit, so
  :func:`repro.obs.merge_telemetry` handles both transports;
* ``worker_log`` — a structured obslog record with correlation fields;
* ``bnb_event`` — a B&B search-tree event (:mod:`repro.ilp`).

Duplicate-execution caveat: if a lease expires and the job runs again
elsewhere, both executions spool their metrics — counters then reflect
work *performed* (two runs), not jobs *completed*, which is exactly
what a utilization view wants.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .aggregate import Snapshot, merge_snapshot, snapshot_delta
from .metrics import MetricsRegistry, snapshot
from .tracer import Span, absorb_record, span_record

__all__ = [
    "SPOOL_DIR_NAME",
    "TelemetrySpool",
    "SpoolCollector",
    "spool_backlog",
]

#: Subdirectory of a queue dir holding the per-worker spool files.
SPOOL_DIR_NAME = "spools"


class TelemetrySpool:
    """Buffered JSONL writer for one worker's telemetry events.

    Events accumulate in memory and hit disk on :meth:`flush` — called
    by the lease heartbeat and before every result publish. Writes are
    whole-line appends through a single file handle, so the collector
    on the other side only ever sees complete records (it discards a
    trailing partial line until the next poll).

    Like :class:`repro.engine.TelemetryWriter`, a spool degrades to a
    no-op if its directory cannot be written — telemetry must never
    take down the worker.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._buffer: List[str] = []
        self._fh = None
        self._disabled = False
        #: Registry snapshot covered by previous ships; the first delta
        #: is taken against construction time, so registry state
        #: inherited from a forked parent is never double-counted.
        self._shipped: Snapshot = snapshot()

    def emit(self, event: str, **fields: Any) -> None:
        record = {"ts": time.time(), "event": event, **fields}
        self._buffer.append(json.dumps(record, default=str))

    def emit_span(self, span: Span) -> None:
        self.emit("worker_span", **span_record(span))

    def emit_log(self, record: Dict[str, Any]) -> None:
        self.emit("worker_log", record=record)

    def ship_metrics(self) -> bool:
        """Spool the registry delta since the last ship; True if any."""
        now = snapshot()
        delta = snapshot_delta(self._shipped, now)
        self._shipped = now
        if not delta:
            return False
        self.emit("metrics_snapshot", worker_pid=os.getpid(), metrics=delta)
        return True

    def flush(self) -> None:
        if not self._buffer or self._disabled:
            return
        lines, self._buffer = self._buffer, []
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write("".join(line + "\n" for line in lines))
            self._fh.flush()
        except OSError:
            self._disabled = True
            self._fh = None

    def close(self) -> None:
        """Ship a final metrics delta, flush, and release the handle."""
        self.ship_metrics()
        self.flush()
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


class SpoolCollector:
    """Folds worker spools into the coordinator's view of the run.

    For every complete line newly appended to any spool under
    ``spool_dir``:

    * ``metrics_snapshot`` deltas merge into the process-global registry
      and into a per-worker-pid accumulator
      (:meth:`worker_snapshots` — the evidence-pack artifact);
    * ``worker_span`` records go to the active tracer (stitching) and
      :attr:`span_records`;
    * everything is re-emitted verbatim into ``writer`` (the batch or
      run telemetry journal), so the journal is the one durable stream.
    """

    def __init__(self, spool_dir: Union[str, Path], writer=None) -> None:
        self.spool_dir = Path(spool_dir)
        self._writer = writer
        self._offsets: Dict[Path, int] = {}
        self.span_records: List[Dict[str, Any]] = []
        self.events = 0
        self._worker_registries: Dict[int, MetricsRegistry] = {}

    def poll(self) -> int:
        """Consume newly flushed spool lines; returns events folded."""
        if not self.spool_dir.is_dir():
            return 0
        folded = 0
        for path in sorted(self.spool_dir.glob("worker-*.jsonl")):
            folded += self._consume(path)
        self.events += folded
        return folded

    def drain(self) -> int:
        """Final sweep once the workers have stopped."""
        return self.poll()

    def backlog(self) -> int:
        """Bytes flushed by workers but not yet folded (spool backlog)."""
        total = 0
        if not self.spool_dir.is_dir():
            return 0
        for path in self.spool_dir.glob("worker-*.jsonl"):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            total += max(0, size - self._offsets.get(path, 0))
        return total

    def worker_snapshots(self) -> Dict[int, Snapshot]:
        """Accumulated per-worker metric snapshots, keyed by pid."""
        return {
            pid: reg.snapshot()
            for pid, reg in sorted(self._worker_registries.items())
        }

    def _consume(self, path: Path) -> int:
        offset = self._offsets.get(path, 0)
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
        except OSError:
            return 0
        if not chunk:
            return 0
        # Only complete lines: a worker may be mid-flush.
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return 0
        self._offsets[path] = offset + cut + 1
        folded = 0
        for line in chunk[: cut + 1].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            self._fold(event)
            folded += 1
        return folded

    def _fold(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == "metrics_snapshot":
            metrics = event.get("metrics") or {}
            merge_snapshot(metrics)
            pid = int(event.get("worker_pid") or 0)
            reg = self._worker_registries.setdefault(pid, MetricsRegistry())
            merge_snapshot(metrics, registry=reg)
        elif kind == "worker_span":
            record = {
                k: v for k, v in event.items() if k not in ("event",)
            }
            self.span_records.append(record)
            absorb_record(record)
        if self._writer is not None:
            payload = {k: v for k, v in event.items() if k != "event"}
            self._writer.emit(event.get("event", "spool_event"), **payload)


def spool_backlog(
    spool_dir: Union[str, Path],
    collector: Optional[SpoolCollector] = None,
) -> int:
    """Unconsumed spool bytes under ``spool_dir``.

    With a live ``collector`` this is its :meth:`~SpoolCollector.backlog`
    (bytes flushed but not folded); without one — a standalone
    ``ObsServer`` watching a queue dir — it is the total spooled bytes.
    """
    if collector is not None:
        return collector.backlog()
    spool_dir = Path(spool_dir)
    if not spool_dir.is_dir():
        return 0
    total = 0
    for path in spool_dir.glob("worker-*.jsonl"):
        try:
            total += path.stat().st_size
        except OSError:
            continue
    return total
