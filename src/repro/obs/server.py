"""Live observability endpoint: ``/metrics``, ``/healthz``, ``/runs``.

A stdlib-only background HTTP thread (:class:`ObsServer`) that makes a
long-running sweep watchable while it runs:

``/metrics``
    The process-global :class:`repro.obs.MetricsRegistry` rendered in
    Prometheus text exposition format (version 0.0.4): ``# HELP`` /
    ``# TYPE`` per metric, counters with the ``_total`` suffix,
    histograms as cumulative ``_bucket{le="..."}`` series plus ``_sum``
    and ``_count``, and a labeled ``repro_runs_active`` gauge per run
    kind. ``curl localhost:PORT/metrics`` or point a Prometheus scrape
    job at it.
``/healthz``
    A JSON liveness document while the server thread is alive. Beyond
    ``{"status": "ok"}``, subsystems register *health sources*
    (:func:`add_health_source`) that contribute named sub-documents —
    the queue coordinator reports queue depth, active lease count, and
    spool backlog, so a stalled worker fleet is visible from a probe.
``/runs``
    A JSON snapshot of the :class:`RunRegistry`: every in-flight ILP-MR /
    ILP-AR synthesis (current iteration, cost, reliability) and batch
    (jobs done/failed/total), plus a ring of recently finished runs.

The server is read-only and binds to ``127.0.0.1`` by default; ``port=0``
picks an ephemeral port (read it back from :attr:`ObsServer.port`).
Starting the server registers a metrics observer
(:func:`repro.obs.add_observer`) so instrumented code records even when
no tracer is installed.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from . import obslog as _obslog
from . import tracer as _tracer
from .metrics import registry as _metrics_registry

__all__ = [
    "RunHandle",
    "RunRegistry",
    "ObsServer",
    "run_registry",
    "reset_run_registry",
    "render_prometheus",
    "escape_label_value",
    "prometheus_name",
    "add_health_source",
    "remove_health_source",
    "health_snapshot",
]


# ---------------------------------------------------------------------------
# Health sources: subsystems contributing to /healthz

#: Registered ``name -> callable`` health sources; each returns a JSON-
#: serializable dict merged into the /healthz document under its name.
_HEALTH_SOURCES: Dict[str, Any] = {}
_HEALTH_LOCK = threading.Lock()


def add_health_source(name: str, source) -> None:
    """Register ``source()`` to contribute ``/healthz`` data as ``name``.

    The queue coordinator registers one reporting queue depth / leases /
    spool backlog for the lifetime of the drain; re-registering a name
    replaces the previous source.
    """
    with _HEALTH_LOCK:
        _HEALTH_SOURCES[name] = source


def remove_health_source(name: str) -> None:
    with _HEALTH_LOCK:
        _HEALTH_SOURCES.pop(name, None)


def health_snapshot() -> Dict[str, Any]:
    """The ``/healthz`` document: liveness plus every source's report.

    A failing source degrades to an ``{"error": ...}`` sub-document
    rather than failing the probe — health reporting must never make a
    healthy server look dead. A source reporting ``degraded: true``
    (e.g. the alert engine while rules fire) flips the top-level
    ``status`` to ``"degraded"`` so load balancers and probes see it
    without parsing sub-documents.
    """
    with _HEALTH_LOCK:
        sources = dict(_HEALTH_SOURCES)
    doc: Dict[str, Any] = {"status": "ok"}
    for name, source in sorted(sources.items()):
        try:
            doc[name] = source()
        except Exception as exc:  # pragma: no cover - defensive
            doc[name] = {"error": f"{type(exc).__name__}: {exc}"}
    if any(
        isinstance(sub, dict) and sub.get("degraded")
        for sub in doc.values()
    ):
        doc["status"] = "degraded"
    return doc


# ---------------------------------------------------------------------------
# Run registry: live snapshots of in-flight work


class RunHandle:
    """One registered run; loops call :meth:`update` as they progress."""

    __slots__ = ("_registry", "run_id", "kind", "started_at", "finished_at",
                 "updated_at", "status", "attrs")

    def __init__(self, registry: "RunRegistry", run_id: str, kind: str,
                 attrs: Dict[str, Any]) -> None:
        self._registry = registry
        self.run_id = run_id
        self.kind = kind
        self.started_at = time.time()
        self.updated_at = self.started_at
        self.finished_at: Optional[float] = None
        self.status = "running"
        self.attrs = attrs

    def update(self, **attrs: Any) -> "RunHandle":
        """Merge progress attributes (iteration, cost, done/total, ...).

        Also stamps :attr:`updated_at` — the heartbeat the
        ``heartbeat_silence`` alert rule watches for hung loops.
        """
        with self._registry._lock:
            self.attrs.update(attrs)
            self.updated_at = time.time()
        return self

    def finish(self, status: str = "done", **attrs: Any) -> None:
        """Mark the run finished; it moves to the recently-finished ring."""
        self._registry._finish(self, status, attrs)

    def as_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "run_id": self.run_id,
            "kind": self.kind,
            "status": self.status,
            "started_at": self.started_at,
            "updated_at": self.updated_at,
            "elapsed": round(
                (self.finished_at or time.time()) - self.started_at, 6
            ),
        }
        d.update(self.attrs)
        return d


class RunRegistry:
    """Thread-safe registry of in-flight and recently finished runs.

    ``start()`` is cheap (a dict insert) and always on — unlike spans,
    run registration has no enable gate, so a scrape arriving at any
    moment sees the truth. Finished runs are kept in a bounded ring so
    ``/runs`` can show what just happened without growing forever.
    """

    def __init__(self, keep_finished: int = 32) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._active: Dict[str, RunHandle] = {}
        self._finished: List[RunHandle] = []
        self._keep_finished = keep_finished

    def start(self, kind: str, **attrs: Any) -> RunHandle:
        run_id = f"{kind}-{os.getpid()}-{next(self._ids)}"
        handle = RunHandle(self, run_id, kind, attrs)
        with self._lock:
            self._active[run_id] = handle
        return handle

    def _finish(self, handle: RunHandle, status: str,
                attrs: Dict[str, Any]) -> None:
        with self._lock:
            if handle.finished_at is not None:  # double finish
                return
            handle.status = status
            handle.finished_at = time.time()
            handle.updated_at = handle.finished_at
            handle.attrs.update(attrs)
            self._active.pop(handle.run_id, None)
            self._finished.append(handle)
            del self._finished[: -self._keep_finished]

    def active(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [h.as_dict() for h in self._active.values()]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "active": [h.as_dict() for h in self._active.values()],
                "finished": [h.as_dict() for h in self._finished],
            }

    def active_by_kind(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for h in self._active.values():
                counts[h.kind] = counts.get(h.kind, 0) + 1
            return counts

    def reset(self) -> None:
        with self._lock:
            self._active.clear()
            self._finished.clear()

    def __len__(self) -> int:
        return len(self._active)


#: The process-global run registry the synthesis loops and the batch
#: executor report into.
_RUN_REGISTRY = RunRegistry()


def run_registry() -> RunRegistry:
    return _RUN_REGISTRY


def reset_run_registry() -> None:
    _RUN_REGISTRY.reset()


# ---------------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Dotted registry name -> valid Prometheus metric name."""
    return "repro_" + _NAME_OK.sub("_", name)


def escape_label_value(value: Any) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, LF."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


def render_prometheus(
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
    runs: Optional[RunRegistry] = None,
) -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    ``metrics`` defaults to the live global registry's snapshot and
    ``runs`` to the global run registry; pass explicit values for
    deterministic golden-file tests.
    """
    if metrics is None:
        metrics = _metrics_registry().snapshot()
    if runs is None:
        runs = _RUN_REGISTRY

    lines: List[str] = []

    def header(pname: str, ptype: str, original: str) -> None:
        lines.append(f"# HELP {pname} repro.obs metric {original}")
        lines.append(f"# TYPE {pname} {ptype}")

    for name, data in sorted(metrics.items()):
        kind = data.get("kind")
        pname = prometheus_name(name)
        if kind == "counter":
            pname += "_total"
            header(pname, "counter", name)
            lines.append(f"{pname} {_format_value(data.get('value', 0))}")
        elif kind == "gauge":
            value = data.get("value")
            if value is None:
                continue
            header(pname, "gauge", name)
            lines.append(f"{pname} {_format_value(value)}")
        elif kind == "histogram":
            header(pname, "histogram", name)
            bounds = list(data.get("bounds", ())) + [float("inf")]
            counts = data.get("bucket_counts")
            if counts is None or len(counts) != len(bounds):
                # Pre-bucket snapshot (e.g. merged from an older worker):
                # everything lands in +Inf, which is still conformant.
                counts = [0] * (len(bounds) - 1) + [data.get("count", 0)]
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += count
                lines.append(
                    f'{pname}_bucket{{le="{_format_le(bound)}"}} {cumulative}'
                )
            lines.append(f"{pname}_sum {_format_value(data.get('sum', 0.0))}")
            lines.append(f"{pname}_count {data.get('count', 0)}")

    active = runs.active_by_kind()
    header("repro_runs_active", "gauge", "runs.active")
    if active:
        for kind in sorted(active):
            lines.append(
                f'repro_runs_active{{kind="{escape_label_value(kind)}"}} '
                f"{active[kind]}"
            )
    else:
        lines.append("repro_runs_active 0")

    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The HTTP server


class _ObsHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1.0"
    # Set by ObsServer.start() on the handler subclass it builds.
    obs_server: "ObsServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            body = json.dumps(
                health_snapshot(), sort_keys=True, default=str
            ) + "\n"
            self._send(200, "application/json", body)
        elif path == "/metrics":
            body = render_prometheus(
                metrics=self.obs_server.metrics.snapshot(),
                runs=self.obs_server.runs,
            )
            self._send(
                200, "text/plain; version=0.0.4; charset=utf-8", body
            )
        elif path == "/runs":
            body = json.dumps(
                self.obs_server.runs.snapshot(), sort_keys=True, default=str
            ) + "\n"
            self._send(200, "application/json", body)
        elif path == "/api/alerts":
            alerts = self.obs_server.alerts
            if alerts is None:
                doc: Dict[str, Any] = {
                    "evaluated_at": None, "rules": [], "firing": [],
                }
            else:
                # Evaluate on demand so a probe right after a breach sees
                # it without waiting out the background interval.
                alerts.evaluate()
                doc = alerts.snapshot()
            body = json.dumps(doc, sort_keys=True, default=str) + "\n"
            self._send(200, "application/json", body)
        elif path == "/":
            self._send(
                200, "text/plain; charset=utf-8",
                "repro.obs endpoints: /metrics /runs /healthz /api/alerts\n",
            )
        else:
            self._send(404, "text/plain; charset=utf-8", "not found\n")

    def _send(self, code: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args: Any) -> None:  # pragma: no cover - quiet
        pass


class ObsServer:
    """Background HTTP thread exposing ``/metrics``, ``/runs``, ``/healthz``.

    Usage (the CLI's ``--serve PORT`` does exactly this)::

        server = ObsServer(port=9200).start()
        ...  # long sweep; scrape http://127.0.0.1:9200/metrics meanwhile
        server.stop()

    Also a context manager. While running, a metrics observer is
    registered so instrumented code keeps its counters ticking without a
    tracer.

    ``port=0`` binds an ephemeral port; :attr:`port` (and :attr:`url`)
    reflect the *actual* bound port the moment :meth:`start` returns, and
    the startup obslog line (``obs.server_started``) carries it too — so
    callers can always print a connectable URL. Subclasses override
    :attr:`handler_class` to extend the route table
    (:class:`repro.service.ServiceServer` adds the ``/api`` job routes).
    """

    #: Request handler the server builds its bound subclass from;
    #: subclasses swap in an extended handler to add routes.
    handler_class = _ObsHandler

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics=None,
        runs: Optional[RunRegistry] = None,
        alerts=None,
        alert_interval: float = 5.0,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.metrics = metrics if metrics is not None else _metrics_registry()
        self.runs = runs if runs is not None else _RUN_REGISTRY
        #: Optional :class:`repro.obs.AlertEngine`; while the server runs
        #: it is re-evaluated every ``alert_interval`` seconds and serves
        #: ``GET /api/alerts``.
        self.alerts = alerts
        self.alert_interval = alert_interval
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._alert_thread: Optional[threading.Thread] = None
        self._alert_stop = threading.Event()

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        if self._httpd is not None:
            return self
        handler = type(
            "_BoundObsHandler", (self.handler_class,), {"obs_server": self}
        )
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-obs-server-{self.port}",
            daemon=True,
        )
        self._thread.start()
        if self.alerts is not None:
            add_health_source("alerts", self.alerts.health)
            self._alert_stop.clear()
            self._alert_thread = threading.Thread(
                target=self._alert_loop,
                name=f"repro-obs-alerts-{self.port}",
                daemon=True,
            )
            self._alert_thread.start()
        _tracer.add_observer()
        # The bound (not the requested) port: with port=0 this is the
        # ephemeral port the OS picked, so the line is always connectable.
        _obslog.log(
            "obs.server_started", host=self.host, port=self.port,
            url=self.url, requested_port=self._requested_port,
        )
        return self

    def _alert_loop(self) -> None:
        while not self._alert_stop.wait(self.alert_interval):
            try:
                self.alerts.evaluate()
            except Exception as exc:  # pragma: no cover - defensive
                _obslog.log(
                    "alert.loop_error", level="warning", error=repr(exc)
                )

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        alert_thread, self._alert_thread = self._alert_thread, None
        if httpd is None:
            return
        if alert_thread is not None:
            self._alert_stop.set()
            alert_thread.join(timeout=5.0)
            remove_health_source("alerts")
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        _tracer.remove_observer()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
