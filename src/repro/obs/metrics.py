"""Process-global metrics: counters, gauges, histograms.

Instruments live in a single :class:`MetricsRegistry` keyed by name
(dotted, e.g. ``"reliability.engine.bdd.calls"``), created on first use:

    metrics.counter("ilp.bnb.nodes").inc(stats.nodes)
    metrics.gauge("reliability.cache.hits").set(cache.stats.hits)
    metrics.histogram("reliability.engine.bdd.seconds").observe(dt)

Updates are plain attribute arithmetic — no locks on the hot path (CPython
attribute stores are atomic enough for monotone counters; the engine's
multi-process sweeps aggregate per-process anyway). ``snapshot()`` renders
the whole registry as a plain dict for reports and exporters.

Hot paths that must stay free even of a dict lookup gate their updates on
:func:`repro.obs.enabled` — the convention used by the reliability cache —
so with tracing off the instrumentation costs one attribute lookup.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset_metrics",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (cache occupancy, gap at exit, ...)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Streaming summary of observations: count/sum/min/max/mean."""

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.setdefault(name, cls(name))
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"not {cls.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain dicts, sorted by name."""
        return {
            name: inst.as_dict()
            for name, inst in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Drop every instrument (tests and fresh profile runs)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)


#: The process-global registry every module-level accessor resolves to.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)


def snapshot() -> Dict[str, Dict[str, Any]]:
    return _REGISTRY.snapshot()


def reset_metrics() -> None:
    _REGISTRY.reset()
