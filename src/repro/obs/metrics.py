"""Process-global metrics: counters, gauges, histograms.

Instruments live in a single :class:`MetricsRegistry` keyed by name
(dotted, e.g. ``"reliability.engine.bdd.calls"``), created on first use:

    metrics.counter("ilp.bnb.nodes").inc(stats.nodes)
    metrics.gauge("reliability.cache.hits").set(cache.stats.hits)
    metrics.histogram("reliability.engine.bdd.seconds").observe(dt)

Counter and gauge updates are plain attribute arithmetic — CPython
attribute stores are atomic enough for monotone counters; the engine's
multi-process sweeps ship per-process snapshots home and merge them
(:mod:`repro.obs.aggregate`). Histograms carry multiple fields per
observation (count/sum/min/max plus exposition buckets), so they take a
small per-instrument lock: the live ``/metrics`` exposition thread
(:mod:`repro.obs.server`) can scrape while synthesis threads write
without torn reads. ``snapshot()`` renders the whole registry as a plain
dict for reports and exporters.

Hot paths that must stay free even of a dict lookup gate their updates on
:func:`repro.obs.enabled` — the convention used by the reliability cache —
so with tracing off the instrumentation costs one attribute lookup.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKET_BOUNDS",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset_metrics",
    "quantile_from_buckets",
    "quantile_from_snapshot",
]

#: Default histogram bucket upper bounds (``le``, inclusive). A sparse
#: exponential ladder wide enough for both latency histograms (seconds,
#: sub-millisecond to minutes) and small-count histograms (eta file
#: lengths). The Prometheus exposition adds the implicit ``+Inf`` bucket.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (cache occupancy, gap at exit, ...)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Streaming summary of observations: count/sum/min/max/mean + buckets.

    ``bucket_counts`` holds *non-cumulative* per-bucket counts, one per
    bound in ``bounds`` plus a trailing overflow (``+Inf``) slot; the
    Prometheus exposition cumulates them. A bound counts values
    ``value <= bound`` (Prometheus ``le`` semantics). Mutation and
    snapshotting take the instrument's lock so a concurrent scrape never
    sees e.g. an updated ``count`` with a stale ``sum``.
    """

    __slots__ = ("name", "count", "total", "min", "max", "bounds",
                 "bucket_counts", "_lock")
    kind = "histogram"

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation within the containing bucket (Prometheus
        ``histogram_quantile`` semantics), clamped to the observed
        min/max so tails never extrapolate past real data. ``None``
        when the histogram is empty.
        """
        with self._lock:
            return quantile_from_buckets(
                self.bounds, self.bucket_counts, q,
                lo=self.min if self.count else None,
                hi=self.max if self.count else None,
            )

    def merge(self, data: Dict[str, Any]) -> None:
        """Fold another histogram's ``as_dict`` snapshot into this one.

        The worker-metrics aggregation path (:mod:`repro.obs.aggregate`).
        Bucket counts only merge when the bounds agree; mismatched bounds
        keep the scalar summary correct and drop the foreign buckets.
        """
        with self._lock:
            self.count += data.get("count", 0)
            self.total += data.get("sum", 0.0)
            other_min = data.get("min")
            other_max = data.get("max")
            if other_min is not None and other_min < self.min:
                self.min = other_min
            if other_max is not None and other_max > self.max:
                self.max = other_max
            counts = data.get("bucket_counts")
            if (
                counts is not None
                and list(data.get("bounds", ())) == list(self.bounds)
                and len(counts) == len(self.bucket_counts)
            ):
                for i, c in enumerate(counts):
                    self.bucket_counts[i] += c

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "kind": self.kind,
                "count": self.count,
                "sum": self.total,
                "min": None if self.count == 0 else self.min,
                "max": None if self.count == 0 else self.max,
                "mean": self.mean,
                "bounds": list(self.bounds),
                "bucket_counts": list(self.bucket_counts),
            }


def quantile_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> Optional[float]:
    """Quantile estimate from *non-cumulative* bucket counts.

    ``counts`` has one slot per bound plus the trailing overflow
    (``+Inf``) slot — the in-memory :class:`Histogram` layout and the
    shape ``as_dict`` snapshots carry. Finds the bucket containing the
    ``q``-th observation and interpolates linearly across its width;
    ``lo``/``hi`` (observed min/max, when known) clamp the first and
    overflow buckets, which otherwise have no finite edge.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0.0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        prev_cumulative = cumulative
        cumulative += c
        if cumulative < rank:
            continue
        lower = bounds[i - 1] if i > 0 else (lo if lo is not None else 0.0)
        if i < len(bounds):
            upper = bounds[i]
        else:
            upper = hi if hi is not None else bounds[-1] if bounds else lower
        if upper < lower:
            upper = lower
        fraction = (rank - prev_cumulative) / c if c else 0.0
        value = lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        if lo is not None and value < lo:
            value = lo
        if hi is not None and value > hi:
            value = hi
        return value
    # Rounding pushed rank past the last non-empty bucket: return the top.
    if hi is not None:
        return hi
    return bounds[-1] if bounds else None


def quantile_from_snapshot(data: Dict[str, Any], q: float) -> Optional[float]:
    """Quantile estimate from a histogram's ``as_dict`` snapshot."""
    counts = data.get("bucket_counts")
    bounds = data.get("bounds")
    if not counts or bounds is None:
        return None
    return quantile_from_buckets(
        bounds, counts, q, lo=data.get("min"), hi=data.get("max")
    )


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        # Fast path: an existing instrument needs no lock (dict reads are
        # atomic); creation and the registry-wide snapshot/reset serialize
        # on the lock so a concurrent scrape never observes a half-built
        # registry.
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.setdefault(name, cls(name))
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"not {cls.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain dicts, sorted by name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: inst.as_dict() for name, inst in instruments}

    def reset(self) -> None:
        """Drop every instrument (tests and fresh profile runs)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)


#: The process-global registry every module-level accessor resolves to.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)


def snapshot() -> Dict[str, Dict[str, Any]]:
    return _REGISTRY.snapshot()


def reset_metrics() -> None:
    _REGISTRY.reset()
