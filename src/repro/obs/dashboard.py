"""``repro top`` — a live fleet dashboard over the observability HTTP API.

Purely a *client* of the endpoints the ObsServer/ServiceServer already
expose (``/healthz``, ``/runs``, ``/api/alerts``, ``/metrics``), so it
works identically against the in-process ``--serve`` thread and a remote
coordinator across the network. Three layers, separable for testing:

* :func:`parse_prometheus` / :class:`DashboardClient` — fetch and decode
  the endpoints (stdlib ``urllib``; every endpoint failure degrades to a
  missing panel, never a crash);
* :func:`build_dashboard_model` — pure data: one poll's documents plus
  the previous model become the rendered state (rates come from the
  delta between polls, the B&B incumbent trail accumulates);
* :func:`render_dashboard` — the model as plain text lines, used both by
  the curses screen and ``repro top --once`` (CI-friendly, no tty).

The curses loop itself (:func:`run_dashboard`) is deliberately thin:
poll, render, paint, sleep; ``q`` quits.
"""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from .metrics import quantile_from_buckets

__all__ = [
    "DashboardClient",
    "build_dashboard_model",
    "parse_prometheus",
    "render_dashboard",
    "run_dashboard",
]

#: How many incumbent objective values the B&B trail remembers.
_TRAIL_LEN = 12

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Decode text exposition into ``{"types": ..., "samples": ...}``.

    ``samples`` maps metric name to a list of ``(labels, value)`` pairs
    (labels a plain dict); ``types`` maps name to the ``# TYPE`` hint.
    Histogram series keep their ``_bucket``/``_sum``/``_count`` suffixed
    names — :func:`histogram_quantile` re-assembles them.
    """
    types: Dict[str, str] = {}
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            continue
        labels = {
            k: v.replace(r"\"", '"').replace(r"\n", "\n").replace(r"\\", "\\")
            for k, v in _LABEL_RE.findall(m.group("labels") or "")
        }
        samples.setdefault(m.group("name"), []).append((labels, value))
    return {"types": types, "samples": samples}


def _scalar(parsed: Dict[str, Any], name: str) -> Optional[float]:
    """First sample value of an unlabeled metric (counter/gauge)."""
    for labels, value in parsed.get("samples", {}).get(name, ()):
        if not labels:
            return value
    return None


def histogram_quantile(
    parsed: Dict[str, Any], name: str, q: float
) -> Optional[float]:
    """Quantile of an exposition histogram (``name`` without suffixes)."""
    buckets = parsed.get("samples", {}).get(f"{name}_bucket")
    if not buckets:
        return None
    series: List[Tuple[float, float]] = []
    for labels, value in buckets:
        le = labels.get("le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        series.append((bound, value))
    series.sort(key=lambda item: item[0])
    bounds = [b for b, _ in series if b != float("inf")]
    counts: List[int] = []
    previous = 0.0
    for _, cumulative in series:
        counts.append(max(0, int(round(cumulative - previous))))
        previous = cumulative
    return quantile_from_buckets(bounds, counts, q)


class DashboardClient:
    """Polls one coordinator's endpoints into dashboard models."""

    def __init__(self, url: str, timeout: float = 2.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self._previous: Optional[Dict[str, Any]] = None
        self._trail: List[float] = []

    def _get(self, path: str) -> Optional[str]:
        try:
            with urllib.request.urlopen(
                f"{self.url}{path}", timeout=self.timeout
            ) as resp:
                return resp.read().decode("utf-8", "replace")
        except (urllib.error.URLError, OSError, ValueError):
            return None

    def _get_json(self, path: str) -> Optional[Dict[str, Any]]:
        body = self._get(path)
        if body is None:
            return None
        try:
            doc = json.loads(body)
        except json.JSONDecodeError:
            return None
        return doc if isinstance(doc, dict) else None

    def poll(self) -> Dict[str, Any]:
        """One round-trip over all four endpoints -> a dashboard model."""
        health = self._get_json("/healthz")
        runs = self._get_json("/runs")
        alerts = self._get_json("/api/alerts")
        metrics_text = self._get("/metrics")
        metrics = (
            parse_prometheus(metrics_text) if metrics_text is not None
            else None
        )
        model = build_dashboard_model(
            url=self.url, health=health, runs=runs, alerts=alerts,
            metrics=metrics, previous=self._previous, trail=self._trail,
        )
        self._previous = model
        self._trail = model["bnb"]["trail"]
        return model


def build_dashboard_model(
    url: str,
    health: Optional[Dict[str, Any]],
    runs: Optional[Dict[str, Any]],
    alerts: Optional[Dict[str, Any]],
    metrics: Optional[Dict[str, Any]],
    previous: Optional[Dict[str, Any]] = None,
    trail: Optional[List[float]] = None,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Fold one poll's endpoint documents into the renderable model."""
    if now is None:
        now = time.time()
    model: Dict[str, Any] = {
        "url": url,
        "ts": now,
        "reachable": health is not None or metrics is not None,
        "status": (health or {}).get("status", "unreachable"),
        "alerts": list((alerts or {}).get("firing", ())),
        "rules": len((alerts or {}).get("rules", ())),
        "active_runs": list((runs or {}).get("active", ())),
        "finished_runs": list((runs or {}).get("finished", ()))[-5:],
        "queue": {},
        "workers": {},
        "throughput": {},
        "bnb": {"trail": list(trail or ())},
    }
    if isinstance(health, dict):
        queue = health.get("queue")
        if isinstance(queue, dict):
            model["queue"] = {
                k: v for k, v in queue.items() if k != "workers"
            }
            if isinstance(queue.get("workers"), dict):
                model["workers"] = queue["workers"]
    if metrics is not None:
        jobs_total = _scalar(metrics, "repro_engine_jobs_completed_total")
        tp: Dict[str, Any] = {"jobs_total": jobs_total}
        if (
            previous is not None
            and jobs_total is not None
            and previous.get("throughput", {}).get("jobs_total") is not None
        ):
            dt = now - previous["ts"]
            if dt > 0:
                tp["jobs_per_s"] = max(
                    0.0,
                    (jobs_total - previous["throughput"]["jobs_total"]) / dt,
                )
        hits = _scalar(metrics, "repro_reliability_cache_hits")
        misses = _scalar(metrics, "repro_reliability_cache_misses")
        if hits is not None or misses is not None:
            lookups = (hits or 0.0) + (misses or 0.0)
            tp["cache_hit_rate"] = (hits or 0.0) / lookups if lookups else None
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            tp[f"job_seconds_{key}"] = histogram_quantile(
                metrics, "repro_engine_job_seconds", q
            )
        model["throughput"] = tp
        bnb = model["bnb"]
        bnb["nodes"] = _scalar(metrics, "repro_ilp_bnb_nodes_total")
        bnb["solves"] = _scalar(metrics, "repro_ilp_bnb_solves_total")
        incumbent = _scalar(metrics, "repro_ilp_bnb_incumbent_objective")
        bnb["incumbent"] = incumbent
        if incumbent is not None and (
            not bnb["trail"] or bnb["trail"][-1] != incumbent
        ):
            bnb["trail"] = (bnb["trail"] + [incumbent])[-_TRAIL_LEN:]
    return model


# ----------------------------------------------------------------------
# rendering


def _fmt(value: Any, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def render_dashboard(model: Dict[str, Any], width: int = 100) -> List[str]:
    """The model as plain text lines (what curses paints, what CI greps)."""
    lines: List[str] = []
    status = model.get("status", "?")
    stamp = time.strftime("%H:%M:%S", time.localtime(model.get("ts", 0)))
    lines.append(
        f"repro top — {model.get('url', '?')}  [{status}]  {stamp}"
    )
    lines.append("=" * min(width, 78))

    alerts = model.get("alerts") or []
    if alerts:
        lines.append(f"ALERTS FIRING ({len(alerts)}):")
        for a in alerts:
            lines.append(
                f"  [{a.get('severity', '?'):8s}] {a.get('rule', '?')}: "
                f"{a.get('message', '')}"[:width]
            )
    else:
        lines.append(f"alerts: none firing ({model.get('rules', 0)} rules)")
    lines.append("")

    active = model.get("active_runs") or []
    lines.append(f"active runs ({len(active)}):")
    for run in active[:8]:
        progress = ""
        if run.get("total") is not None:
            progress = f"  {run.get('done', 0)}/{run['total']}"
            if run.get("failed"):
                progress += f" ({run['failed']} failed)"
        lines.append(
            f"  {run.get('run_id', '?'):28s} {run.get('kind', '?'):10s}"
            f" {run.get('elapsed', 0):8.1f}s{progress}"[:width]
        )
    if not active:
        lines.append("  (idle)")
    lines.append("")

    queue = model.get("queue") or {}
    if queue:
        lines.append(
            "queue: depth={} leases={} results={} backlog={}B{}".format(
                _fmt(queue.get("queue_depth")),
                _fmt(queue.get("active_leases")),
                _fmt(queue.get("results")),
                _fmt(queue.get("spool_backlog")),
                (
                    f" oldest_lease={queue['oldest_lease_age']:.0f}s"
                    if isinstance(
                        queue.get("oldest_lease_age"), (int, float)
                    ) else ""
                ),
            )
        )
        workers = model.get("workers") or {}
        if workers:
            cells = [
                f"{pid}:{(info or {}).get('jobs', 0)}"
                for pid, info in sorted(workers.items())
            ]
            lines.append("  worker jobs: " + " ".join(cells)[:width])

    tp = model.get("throughput") or {}
    if tp:
        rate = tp.get("jobs_per_s")
        hit = tp.get("cache_hit_rate")
        lines.append(
            "throughput: jobs={}{}{}  job_s p50={} p95={} p99={}".format(
                _fmt(tp.get("jobs_total")),
                f" ({rate:.2f}/s)" if isinstance(rate, float) else "",
                f"  cache_hit={hit:.0%}" if isinstance(hit, float) else "",
                _fmt(tp.get("job_seconds_p50")),
                _fmt(tp.get("job_seconds_p95")),
                _fmt(tp.get("job_seconds_p99")),
            )
        )

    bnb = model.get("bnb") or {}
    if bnb.get("nodes") is not None or bnb.get("trail"):
        trail = bnb.get("trail") or []
        trail_cell = (
            " -> ".join(f"{v:.6g}" for v in trail[-6:]) if trail else "-"
        )
        lines.append(
            f"b&b: solves={_fmt(bnb.get('solves'))}"
            f" nodes={_fmt(bnb.get('nodes'))}  incumbent trail: {trail_cell}"
        )

    if not model.get("reachable"):
        lines.append("")
        lines.append(f"(coordinator unreachable at {model.get('url')})")
    return lines


# ----------------------------------------------------------------------
# the curses loop


def run_dashboard(
    url: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    once: bool = False,
) -> int:
    """Drive the dashboard against ``url``.

    ``once`` prints a single plain-text frame (no curses, no tty needed —
    the CI smoke mode); otherwise a curses screen refreshes every
    ``interval`` seconds until ``q`` (or ``iterations`` frames, for
    tests). Returns a shell exit code: 0, or 1 when the final frame
    could not reach the coordinator at all.
    """
    client = DashboardClient(url)
    if once:
        model = client.poll()
        for line in render_dashboard(model):
            print(line)
        return 0 if model.get("reachable") else 1

    import curses

    final: Dict[str, Any] = {}

    def _loop(stdscr) -> None:
        nonlocal final
        curses.curs_set(0)
        stdscr.nodelay(True)
        frames = 0
        while iterations is None or frames < iterations:
            model = client.poll()
            final = model
            frames += 1
            height, width = stdscr.getmaxyx()
            stdscr.erase()
            for i, line in enumerate(render_dashboard(model, width - 1)):
                if i >= height - 1:
                    break
                stdscr.addnstr(i, 0, line, width - 1)
            stdscr.addnstr(
                height - 1, 0,
                f"q to quit — refresh {interval:.0f}s", width - 1,
            )
            stdscr.refresh()
            deadline = time.time() + interval
            while time.time() < deadline:
                try:
                    key = stdscr.getch()
                except curses.error:  # pragma: no cover - tty quirk
                    key = -1
                if key in (ord("q"), ord("Q")):
                    return
                time.sleep(0.05)

    curses.wrapper(_loop)
    return 0 if final.get("reachable") else 1
