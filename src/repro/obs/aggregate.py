"""Cross-process metrics aggregation for the exploration engine.

Pool workers accumulate into their *own* process-global
:class:`repro.obs.MetricsRegistry`; before this module those numbers
simply vanished when the worker exited, so a ``--jobs 8`` sweep reported
an empty registry while a serial run of the same batch reported
thousands of engine calls. The fix is a snapshot/delta/merge pipeline:

1. the worker snapshots its registry before and after each job and ships
   the delta home inside the (already pickled) job result
   (:func:`snapshot_delta`);
2. the parent emits the delta as a ``metrics_snapshot`` event on the
   batch's JSONL telemetry stream — the same channel the job life-cycle
   events use — and folds it into its own registry
   (:func:`merge_snapshot`): counters sum, gauges take the last write,
   histograms merge count/sum/min/max and bucket counts.

Post-hoc, :func:`merge_telemetry` replays the ``metrics_snapshot``
events of a telemetry file into a fresh registry, so worker totals can
be reconstructed from the artifact alone.

Caveat: a per-job histogram delta cannot recover the window's true
min/max from two cumulative snapshots, so deltas carry the worker's
process-lifetime min/max instead — a conservative superset. Counts,
sums, and buckets are exact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

from .metrics import MetricsRegistry
from .metrics import registry as _global_registry

__all__ = [
    "snapshot_delta",
    "merge_snapshot",
    "merge_telemetry",
    "iter_metrics_snapshots",
]

Snapshot = Dict[str, Dict[str, Any]]


def snapshot_delta(before: Snapshot, after: Snapshot) -> Snapshot:
    """What changed between two registry snapshots, as a snapshot.

    Counters and histogram counts/sums/buckets subtract; gauges keep the
    ``after`` value (last-write semantics); instruments that did not move
    are dropped so the shipped payload stays small.
    """
    delta: Snapshot = {}
    for name, data in after.items():
        kind = data.get("kind")
        prev = before.get(name)
        if prev is not None and prev.get("kind") != kind:
            prev = None  # re-registered under a different kind; treat as new
        if kind == "counter":
            value = data.get("value", 0) - (
                prev.get("value", 0) if prev else 0
            )
            if value:
                delta[name] = {"kind": "counter", "value": value}
        elif kind == "gauge":
            if data.get("value") is not None and data != prev:
                delta[name] = {"kind": "gauge", "value": data["value"]}
        elif kind == "histogram":
            count = data.get("count", 0) - (prev.get("count", 0) if prev else 0)
            if count <= 0:
                continue
            entry = {
                "kind": "histogram",
                "count": count,
                "sum": data.get("sum", 0.0)
                - (prev.get("sum", 0.0) if prev else 0.0),
                # Window min/max are unrecoverable from cumulative
                # snapshots; the process-lifetime values are a superset.
                "min": data.get("min"),
                "max": data.get("max"),
            }
            bounds = data.get("bounds")
            counts = data.get("bucket_counts")
            if bounds is not None and counts is not None:
                prev_counts = (
                    prev.get("bucket_counts")
                    if prev and list(prev.get("bounds", ())) == list(bounds)
                    else None
                )
                if prev_counts is not None and len(prev_counts) == len(counts):
                    counts = [c - p for c, p in zip(counts, prev_counts)]
                entry["bounds"] = list(bounds)
                entry["bucket_counts"] = list(counts)
            delta[name] = entry
    return delta


def merge_snapshot(
    snap: Snapshot, registry: Optional[MetricsRegistry] = None
) -> int:
    """Fold a snapshot (typically a worker delta) into ``registry``.

    Defaults to the process-global registry. Returns the number of
    instruments merged; instruments whose kind conflicts with an
    existing registration are skipped (a foreign snapshot must never
    poison the live registry).
    """
    reg = registry if registry is not None else _global_registry()
    merged = 0
    for name, data in snap.items():
        kind = data.get("kind")
        try:
            if kind == "counter":
                value = data.get("value", 0)
                if value:
                    reg.counter(name).inc(value)
            elif kind == "gauge":
                if data.get("value") is not None:
                    reg.gauge(name).set(data["value"])
            elif kind == "histogram":
                reg.histogram(name).merge(data)
            else:
                continue
        except TypeError:
            continue  # name already registered under another kind
        merged += 1
    return merged


def iter_metrics_snapshots(
    source: Union[str, Path, Iterable[Dict[str, Any]]],
) -> Iterable[Snapshot]:
    """Yield the ``metrics_snapshot`` payloads of a telemetry stream."""
    if isinstance(source, (str, Path)):
        from ..engine.telemetry import read_events

        source = read_events(source)
    for event in source:
        if event.get("event") == "metrics_snapshot":
            metrics = event.get("metrics")
            if isinstance(metrics, dict):
                yield metrics


def merge_telemetry(
    source: Union[str, Path, Iterable[Dict[str, Any]]],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Replay a telemetry file's worker snapshots into a registry.

    ``registry`` defaults to a *fresh* one (not the global), so the
    reconstruction can be inspected without contaminating live metrics.
    """
    reg = registry if registry is not None else MetricsRegistry()
    for snap in iter_metrics_snapshots(source):
        merge_snapshot(snap, reg)
    return reg
