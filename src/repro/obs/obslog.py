"""Structured JSON logging with run/job/span correlation.

One JSON object per line, the same shape family as the engine's batch
telemetry, so a log file and a telemetry file can be grepped and joined
with the same tooling:

    {"ts": 1754..., "level": "info", "event": "ilp_mr.iteration",
     "run": "ilp_mr-1234-1", "iteration": 3, "cost": 34.0, ...}

Correlation fields come from two places and are attached automatically:

* a context-local field stack set with :func:`log_context` — the run and
  job ids the synthesis loops and the executor push around their work
  (``contextvars``, so threads and pool callbacks don't bleed into each
  other);
* the innermost open :class:`repro.obs.Span` of the active tracer, when
  there is one (``span`` id and ``span_name``).

Logging is *off* by default: :func:`log` costs one global lookup and a
``None`` check until :func:`configure_obslog` installs a sink. The sink
writes to a path (append mode, JSONL) or an open stream; a broken sink
degrades to a no-op — logging must never take a run down (the same
contract as :class:`repro.engine.TelemetryWriter`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, TextIO, Tuple, Union

from . import tracer as _tracer

__all__ = [
    "ObsLog",
    "configure_obslog",
    "get_obslog",
    "obslog_enabled",
    "log",
    "log_context",
    "current_log_context",
    "read_log",
]

#: Severity order for the level filter.
_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: Context-local correlation fields, stored as a tuple of (key, value)
#: pairs so snapshots are immutable and tokens restore cleanly.
_FIELDS: ContextVar[Tuple[Tuple[str, Any], ...]] = ContextVar(
    "repro_obslog_fields", default=()
)


class ObsLog:
    """A JSONL log sink with level filtering and size-based rotation.

    ``path`` appends to a file (parent directories are created);
    ``stream`` writes to an open text stream instead. Exactly one of the
    two is used; ``path`` wins when both are given.

    A path sink with ``max_bytes > 0`` rotates before a record would push
    the file past the cap: ``app.jsonl`` shifts to ``app.jsonl.1``,
    ``.1`` to ``.2``, ... keeping ``backups`` old files. Rotation happens
    on record boundaries, so every rotated file stays valid JSONL.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        stream: Optional[TextIO] = None,
        level: str = "info",
        max_bytes: int = 0,
        backups: int = 3,
    ) -> None:
        if level not in _LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
            )
        if backups < 1:
            raise ValueError(f"backups must be >= 1, got {backups!r}")
        self.level = level
        self.path = Path(path) if path is not None else None
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._size = 0
        self._stream: Optional[TextIO] = None
        self._owns_stream = False
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("a", encoding="utf-8")
            self._owns_stream = True
            try:
                self._size = self.path.stat().st_size
            except OSError:
                self._size = 0
        elif stream is not None:
            self._stream = stream

    @property
    def enabled(self) -> bool:
        return self._stream is not None

    def _rotate(self) -> None:
        """Shift ``path -> path.1 -> path.2 ...`` and reopen fresh."""
        assert self.path is not None and self._stream is not None
        self._stream.close()
        for i in range(self.backups, 0, -1):
            src = (
                self.path
                if i == 1
                else self.path.with_name(f"{self.path.name}.{i - 1}")
            )
            dst = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                src.replace(dst)
        self._stream = self.path.open("a", encoding="utf-8")
        self._size = 0

    def emit(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        if self._stream is None:
            return
        if _LEVELS.get(level, 20) < _LEVELS[self.level]:
            return
        record: Dict[str, Any] = {"ts": time.time(), "level": level,
                                  "event": event}
        record.update(dict(_FIELDS.get()))
        span = _tracer.current_span()
        if span is not None:
            record.setdefault("span", span.span_id)
            record.setdefault("span_name", span.name)
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=str) + "\n"
            payload = len(line.encode("utf-8"))
            if (
                self._owns_stream
                and self.max_bytes > 0
                and self._size > 0
                and self._size + payload > self.max_bytes
            ):
                self._rotate()
            self._stream.write(line)
            self._stream.flush()
            self._size += payload
        except (ValueError, OSError):
            # Closed or broken sink — degrade to no-op for the rest of
            # the run rather than poisoning the caller.
            self._stream = None

    def close(self) -> None:
        if self._owns_stream and self._stream is not None:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "ObsLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: The installed sink; ``None`` means logging is disabled.
_SINK: Optional[ObsLog] = None


def configure_obslog(
    path: Optional[Union[str, Path]] = None,
    stream: Optional[TextIO] = None,
    level: str = "info",
    max_bytes: int = 0,
    backups: int = 3,
) -> Optional[ObsLog]:
    """Install a log sink (or uninstall with no arguments).

    ``max_bytes``/``backups`` enable size-based rotation for path sinks
    (``max_bytes=0``, the default, keeps the historical append-forever
    behavior). Returns the newly installed :class:`ObsLog`, or ``None``
    after an uninstall. The previous sink, if any, is closed.
    """
    global _SINK
    previous, _SINK = _SINK, None
    if previous is not None:
        previous.close()
    if path is not None or stream is not None:
        _SINK = ObsLog(path=path, stream=stream, level=level,
                       max_bytes=max_bytes, backups=backups)
    return _SINK


def get_obslog() -> Optional[ObsLog]:
    return _SINK


def obslog_enabled() -> bool:
    return _SINK is not None and _SINK.enabled


def log(event: str, level: str = "info", **fields: Any) -> None:
    """Emit one structured log record (no-op while no sink is installed)."""
    sink = _SINK
    if sink is None:
        return
    sink.emit(level, event, fields)


@contextmanager
def log_context(**fields: Any) -> Iterator[None]:
    """Attach correlation fields (``run=..., job=...``) to every record
    logged inside the ``with`` block (context-local, so concurrent
    threads and tasks keep separate stacks)."""
    token = _FIELDS.set(_FIELDS.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _FIELDS.reset(token)


def current_log_context() -> Dict[str, Any]:
    """The correlation fields that would be attached right now."""
    return dict(_FIELDS.get())


def read_log(path: Union[str, Path]) -> list:
    """Parse a JSONL log file (skipping any truncated trailing line)."""
    records = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records
