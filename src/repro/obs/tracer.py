"""Context-local tracer with nested spans.

A :class:`Span` is one timed region of the program — an ILP-MR iteration,
a reliability analysis, a batch job — with a name, monotonic start/end
times, typed attributes, and a parent link. Spans nest through a
context-local stack (``contextvars``, so concurrent threads and asyncio
tasks each see their own stack) and every finished span is collected on
the :class:`Tracer` for export (:mod:`repro.obs.export`) and profiling
(:mod:`repro.obs.profile`).

Tracing is *off* by default. The module-level :func:`span` helper costs a
single attribute lookup plus a ``None`` check when no tracer is installed
— it returns a stateless no-op span — so hot paths stay instrumented
permanently without measurable overhead:

    with span("ilp_mr.iteration", index=i) as s:
        ...
        s.set_attr("cost", candidate.cost())

Enable tracing for a region with :func:`tracing`::

    with tracing() as tracer:
        synthesize_ilp_mr(spec)
    print(render_profile(tracer.spans))

An optional :class:`repro.engine.TelemetryWriter` streams ``span_start``
/ ``span_end`` events into the same JSONL format PR 1's batch telemetry
uses, so one file can carry both event families.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

from .context import current_trace_context, span_uid

__all__ = [
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "span",
    "current_span",
    "set_attr",
    "enabled",
    "add_observer",
    "remove_observer",
    "observed",
    "get_tracer",
    "set_tracer",
    "tracing",
    "span_record",
    "absorb_record",
    "reset_span_stack",
]


class Span:
    """One timed, attributed region; also its own context manager."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "ts_epoch",
        "tid",
        "attrs",
        "trace_id",
        "remote_parent",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.ts_epoch = time.time()
        self.tid = threading.get_ident()
        self.attrs = attrs
        #: Trace id adopted from the parent span or the active
        #: :class:`repro.obs.TraceContext`; ``None`` outside any trace.
        self.trace_id: Optional[str] = None
        #: For root spans opened under a remote context: the uid of the
        #: coordinator-side span this one parents to.
        self.remote_parent: Optional[str] = None
        self._tracer: Optional["Tracer"] = None
        self._token = None

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._finish(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state}, attrs={self.attrs!r})"


class _NoopSpan:
    """Stateless stand-in returned when tracing is disabled.

    Reentrant and shared: it records nothing, so one singleton serves
    every call site concurrently.
    """

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NOOP_SPAN = _NoopSpan()

#: Context-local stack of open spans (shared across tracers; only one
#: tracer is active at a time).
_STACK: ContextVar[tuple] = ContextVar("repro_obs_stack", default=())


class Tracer:
    """Collects spans for one traced region of the program.

    ``writer`` (optional) is a :class:`repro.engine.TelemetryWriter`;
    when given, every span emits ``span_start`` on open and ``span_end``
    (with duration and final attributes) on close, sharing PR 1's JSONL
    telemetry format.
    """

    def __init__(self, writer=None) -> None:
        self.spans: List[Span] = []
        #: Span *records* absorbed from other processes (pool envelopes,
        #: queue spools) — already-serialized dicts in the
        #: :func:`span_record` format, merged in by collectors so one
        #: tracer holds the whole distributed trace for stitching.
        self.records: List[Dict[str, Any]] = []
        self._ids = itertools.count(1)
        self._writer = writer
        self._lock = threading.Lock()

    def span(self, name: str, /, **attrs: Any) -> Span:
        parent = self.current()
        s = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        if parent is not None:
            s.trace_id = parent.trace_id
        else:
            ctx = current_trace_context()
            if ctx is not None:
                s.trace_id = ctx.trace_id
                s.remote_parent = ctx.parent_uid
        s._tracer = self
        s._token = _STACK.set(_STACK.get() + (s,))
        if self._writer is not None:
            extra: Dict[str, Any] = {}
            if s.trace_id is not None:
                extra["trace"] = s.trace_id
                extra["uid"] = span_uid(s)
            self._writer.emit(
                "span_start",
                ts=s.ts_epoch,
                span=s.span_id,
                parent=s.parent_id,
                name=name,
                **extra,
            )
        return s

    def add_record(self, record: Dict[str, Any]) -> None:
        """Absorb one remote :func:`span_record` for stitching."""
        with self._lock:
            self.records.append(record)

    def current(self) -> Optional[Span]:
        stack = _STACK.get()
        return stack[-1] if stack else None

    def _finish(self, s: Span) -> None:
        if s.end is not None:  # already finished (double __exit__)
            return
        s.end = time.perf_counter()
        if s._token is not None:
            try:
                _STACK.reset(s._token)
            except ValueError:  # finished from a different context
                stack = _STACK.get()
                if s in stack:
                    _STACK.set(tuple(x for x in stack if x is not s))
            s._token = None
        with self._lock:
            self.spans.append(s)
        if self._writer is not None:
            extra: Dict[str, Any] = {}
            if s.trace_id is not None:
                extra["trace"] = s.trace_id
                extra["uid"] = span_uid(s)
                if s.remote_parent is not None:
                    extra["remote_parent"] = s.remote_parent
            self._writer.emit(
                "span_end",
                ts=s.ts_epoch + s.duration,
                span=s.span_id,
                parent=s.parent_id,
                name=s.name,
                duration=round(s.duration, 9),
                attrs={k: _jsonable(v) for k, v in s.attrs.items()},
                **extra,
            )

    def __len__(self) -> int:
        return len(self.spans)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


#: The installed tracer; ``None`` means tracing is disabled and every
#: :func:`span` call returns :data:`NOOP_SPAN`.
_ACTIVE: Optional[Tracer] = None

#: Nesting depth of forced-observation regions. Metrics call sites gate on
#: :func:`enabled`; historically that meant "a tracer is installed", but the
#: live observability plane (exposition server, pool workers shipping their
#: snapshots home, ``run_batch``) needs counters to tick without paying for
#: span collection. Observers raise this count so ``enabled()`` is true while
#: spans still degrade to the shared no-op.
_OBSERVERS = 0


def enabled() -> bool:
    """True when instrumentation should record.

    Either a tracer is installed (spans + metrics) or at least one
    metrics observer — an :class:`repro.obs.ObsServer`, a pool worker, a
    running batch — is active (metrics only; spans stay no-ops).
    """
    return _ACTIVE is not None or _OBSERVERS > 0


def add_observer() -> None:
    """Enable metrics recording without a tracer (nestable)."""
    global _OBSERVERS
    _OBSERVERS += 1


def remove_observer() -> None:
    """Undo one :func:`add_observer`; never drops below zero."""
    global _OBSERVERS
    if _OBSERVERS > 0:
        _OBSERVERS -= 1


def reset_span_stack() -> None:
    """Drop any inherited open-span stack.

    Post-fork hygiene for worker processes: a worker forked while the
    coordinator's batch span was open inherits that span on the
    context-local stack, and every span it opens would silently parent
    to a phantom local copy instead of adopting the cross-process
    :class:`repro.obs.TraceContext`. Workers call this once at startup.
    """
    _STACK.set(())


@contextmanager
def observed() -> Iterator[None]:
    """Scoped metrics observation: counters tick inside, spans stay off."""
    add_observer()
    try:
        yield
    finally:
        remove_observer()


def get_tracer() -> Optional[Tracer]:
    return _ACTIVE


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (or ``None`` to disable); returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def tracing(writer=None, tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scoped tracing: install a (new) tracer, restore the previous one.

    The span stack is snapshotted on entry and restored on exit, so a
    span left open inside the region (a bug, but survivable) cannot leak
    into later traces as a phantom parent.
    """
    t = tracer if tracer is not None else Tracer(writer=writer)
    previous = set_tracer(t)
    saved_stack = _STACK.get()
    try:
        yield t
    finally:
        _STACK.set(saved_stack)
        set_tracer(previous)


def span(name: str, /, **attrs: Any):
    """Open a span on the active tracer, or a shared no-op when disabled."""
    t = _ACTIVE
    if t is None:
        return NOOP_SPAN
    return t.span(name, **attrs)


def current_span() -> Optional[Span]:
    """The innermost open span, or ``None`` (also when disabled)."""
    t = _ACTIVE
    if t is None:
        return None
    return t.current()


def set_attr(key: str, value: Any) -> None:
    """Attach ``key=value`` to the innermost open span, if any.

    The one-liner engines use to report size attributes (BDD node count,
    path-set count) without knowing whether anything is listening.
    """
    t = _ACTIVE
    if t is None:
        return
    s = t.current()
    if s is not None:
        s.attrs[key] = value


def span_record(s: Span, pid: Optional[int] = None) -> Dict[str, Any]:
    """Serialize a finished span into the cross-process wire format.

    The record is what queue workers spool home and pool workers ship in
    their result envelope: epoch timestamps (``ts`` + ``dur`` seconds, so
    spans from different processes align on the wall clock), the span's
    cross-process ``uid``, and the ``parent`` uid — the local parent when
    the span was nested, else the remote coordinator span adopted from
    the active :class:`repro.obs.TraceContext`.
    """
    if pid is None:
        pid = os.getpid()
    if s.parent_id is not None:
        parent: Optional[str] = f"{pid}.{s.parent_id}"
    else:
        parent = s.remote_parent
    return {
        "name": s.name,
        "uid": span_uid(s, pid=pid),
        "parent": parent,
        "trace": s.trace_id,
        "pid": pid,
        "tid": s.tid,
        "ts": s.ts_epoch,
        "dur": round(s.duration, 9),
        "attrs": {k: _jsonable(v) for k, v in s.attrs.items()},
    }


def absorb_record(record: Dict[str, Any]) -> None:
    """Merge one remote span record into the active tracer (if any)."""
    t = _ACTIVE
    if t is not None:
        t.add_record(record)
