"""Span exporters: Chrome trace-event JSON and telemetry JSONL.

Two offline formats for a finished trace:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``chrome://tracing`` and Perfetto both load it).
  Each finished span becomes one complete ("X") event with microsecond
  timestamps relative to the earliest span, its attributes under
  ``args``, and thread ids remapped to small integers.
* :func:`export_spans_jsonl` — ``span_start``/``span_end`` event pairs
  appended through a :class:`repro.engine.TelemetryWriter`, i.e. the same
  JSONL stream format as the batch telemetry of PR 1 (streaming export is
  also available by constructing the :class:`repro.obs.Tracer` with a
  writer directly; this function is the batch form for a finished trace).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .tracer import Span

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "export_spans_jsonl",
]


def chrome_trace_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Finished spans as Chrome complete ("X") events, start-ordered."""
    done = sorted((s for s in spans if s.finished), key=lambda s: s.start)
    if not done:
        return []
    base = done[0].start
    tids: Dict[int, int] = {}
    pid = os.getpid()
    events: List[Dict[str, Any]] = []
    for s in done:
        tid = tids.setdefault(s.tid, len(tids) + 1)
        events.append(
            {
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ph": "X",
                "ts": round((s.start - base) * 1e6, 3),
                "dur": round(s.duration * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": {"span_id": s.span_id, **s.attrs},
            }
        )
    return events


def chrome_trace(
    spans: Iterable[Span], metrics: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The full Chrome trace document (``traceEvents`` + metadata)."""
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    if metrics:
        doc["otherData"]["metrics"] = metrics
    return doc


def write_chrome_trace(
    path: Union[str, Path],
    spans: Iterable[Span],
    metrics: Optional[Dict[str, Any]] = None,
) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = chrome_trace(spans, metrics=metrics)
    path.write_text(
        json.dumps(doc, sort_keys=True, default=str), encoding="utf-8"
    )
    return path


def export_spans_jsonl(writer, spans: Iterable[Span]) -> int:
    """Append ``span_start``/``span_end`` pairs for finished spans.

    ``writer`` is a :class:`repro.engine.TelemetryWriter` (possibly
    pointed at an existing batch-telemetry file — the event names do not
    collide with the batch life-cycle events). Returns the number of
    spans exported.
    """
    count = 0
    for s in sorted((s for s in spans if s.finished), key=lambda x: x.start):
        writer.emit(
            "span_start",
            ts=s.ts_epoch,
            span=s.span_id,
            parent=s.parent_id,
            name=s.name,
        )
        writer.emit(
            "span_end",
            ts=s.ts_epoch + s.duration,
            span=s.span_id,
            parent=s.parent_id,
            name=s.name,
            duration=round(s.duration, 9),
            attrs={k: _jsonable(v) for k, v in s.attrs.items()},
        )
        count += 1
    return count


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
