"""Span exporters: Chrome trace-event JSON and telemetry JSONL.

Offline formats for a finished trace:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``chrome://tracing`` and Perfetto both load it).
  Each finished span becomes one complete ("X") event with microsecond
  timestamps relative to the earliest span, its attributes under
  ``args``, and thread ids remapped to small integers.
* :func:`stitch_chrome_trace` — the *distributed* variant: local spans
  plus remote :func:`repro.obs.tracer.span_record` dicts collected from
  pool envelopes and queue spools, aligned on the wall clock so one
  document shows the coordinator lane and every worker lane, with span
  uids / parent uids / trace ids under ``args``.
* :func:`export_spans_jsonl` — ``span_start``/``span_end`` event pairs
  appended through a :class:`repro.engine.TelemetryWriter`, i.e. the same
  JSONL stream format as the batch telemetry of PR 1 (streaming export is
  also available by constructing the :class:`repro.obs.Tracer` with a
  writer directly; this function is the batch form for a finished trace).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .tracer import Span, span_record

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "stitch_chrome_trace",
    "stitched_trace_events",
    "write_chrome_trace",
    "export_spans_jsonl",
]


def chrome_trace_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Finished spans as Chrome complete ("X") events, start-ordered."""
    done = sorted((s for s in spans if s.finished), key=lambda s: s.start)
    if not done:
        return []
    base = done[0].start
    tids: Dict[int, int] = {}
    pid = os.getpid()
    events: List[Dict[str, Any]] = []
    for s in done:
        tid = tids.setdefault(s.tid, len(tids) + 1)
        events.append(
            {
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ph": "X",
                "ts": round((s.start - base) * 1e6, 3),
                "dur": round(s.duration * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": {"span_id": s.span_id, **s.attrs},
            }
        )
    return events


def stitched_trace_events(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Span *records* (possibly many processes) as Chrome "X" events.

    Records carry epoch timestamps (``ts`` seconds + ``dur`` seconds),
    so spans from the coordinator and every worker align on the wall
    clock; each source pid becomes one Chrome process lane and its
    thread ids are remapped to small integers per lane. The span uid,
    parent uid, and trace id ride under ``args`` — that is what the
    connectivity tests walk to prove the trace has no orphans.
    """
    done = sorted(
        (r for r in records if r.get("ts") is not None),
        key=lambda r: (r["ts"], r.get("uid") or ""),
    )
    if not done:
        return []
    base = done[0]["ts"]
    tids: Dict[Any, int] = {}
    events: List[Dict[str, Any]] = []
    for r in done:
        name = str(r.get("name", "span"))
        pid = int(r.get("pid") or 0)
        lane = tids.setdefault((pid, r.get("tid")), len(tids) + 1)
        args: Dict[str, Any] = dict(r.get("attrs") or {})
        if r.get("uid") is not None:
            args["span_uid"] = r["uid"]
        if r.get("parent") is not None:
            args["parent_uid"] = r["parent"]
        if r.get("trace") is not None:
            args["trace_id"] = r["trace"]
        events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": round((r["ts"] - base) * 1e6, 3),
                "dur": round(float(r.get("dur") or 0.0) * 1e6, 3),
                "pid": pid,
                "tid": lane,
                "args": args,
            }
        )
    return events


def stitch_chrome_trace(
    records: Iterable[Dict[str, Any]],
    spans: Iterable[Span] = (),
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One Chrome trace spanning the coordinator and all its workers.

    ``records`` are remote :func:`repro.obs.tracer.span_record` dicts
    (queue spools, pool envelopes); ``spans`` are local finished
    :class:`Span` objects, serialized here under the current pid. Lanes
    are named per pid — ``coordinator`` for this process, ``worker-N``
    for the rest — and ``otherData.trace_id`` is set when every event
    agrees on one trace.
    """
    all_records = [
        span_record(s) for s in spans if s.finished
    ] + [dict(r) for r in records]
    events = stitched_trace_events(all_records)
    own_pid = os.getpid()
    pids = sorted({e["pid"] for e in events})
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": "coordinator"
                    if pid == own_pid
                    else f"worker-{pid}"
                },
            }
        )
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "pids": pids},
    }
    trace_ids = {
        r.get("trace") for r in all_records if r.get("trace") is not None
    }
    if len(trace_ids) == 1:
        doc["otherData"]["trace_id"] = trace_ids.pop()
    if metrics:
        doc["otherData"]["metrics"] = metrics
    return doc


def chrome_trace(
    spans: Iterable[Span],
    metrics: Optional[Dict[str, Any]] = None,
    records: Optional[Iterable[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """The full Chrome trace document (``traceEvents`` + metadata).

    With ``records`` (remote span records absorbed into the tracer by a
    collector), the document is the stitched multi-process form; without
    them it is the classic single-process export.
    """
    records = list(records) if records is not None else []
    if records:
        return stitch_chrome_trace(records, spans=spans, metrics=metrics)
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    if metrics:
        doc["otherData"]["metrics"] = metrics
    return doc


def write_chrome_trace(
    path: Union[str, Path],
    spans: Iterable[Span],
    metrics: Optional[Dict[str, Any]] = None,
    records: Optional[Iterable[Dict[str, Any]]] = None,
) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = chrome_trace(spans, metrics=metrics, records=records)
    path.write_text(
        json.dumps(doc, sort_keys=True, default=str), encoding="utf-8"
    )
    return path


def export_spans_jsonl(writer, spans: Iterable[Span]) -> int:
    """Append ``span_start``/``span_end`` pairs for finished spans.

    ``writer`` is a :class:`repro.engine.TelemetryWriter` (possibly
    pointed at an existing batch-telemetry file — the event names do not
    collide with the batch life-cycle events). Returns the number of
    spans exported.
    """
    count = 0
    for s in sorted((s for s in spans if s.finished), key=lambda x: x.start):
        writer.emit(
            "span_start",
            ts=s.ts_epoch,
            span=s.span_id,
            parent=s.parent_id,
            name=s.name,
        )
        writer.emit(
            "span_end",
            ts=s.ts_epoch + s.duration,
            span=s.span_id,
            parent=s.parent_id,
            name=s.name,
            duration=round(s.duration, 9),
            attrs={k: _jsonable(v) for k, v in s.attrs.items()},
        )
        count += 1
    return count


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
