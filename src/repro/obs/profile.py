"""Aggregate finished spans into a profile tree.

Spans sharing the same *name path* (root name / ... / own name) merge
into one :class:`ProfileNode` carrying call count, cumulative time, and
self time (cumulative minus the children's cumulative). Children are
sorted hottest-first, so rendering the tree top-down reads like a
profiler's hot-path view — :func:`repro.report.render_profile` does the
ASCII rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .tracer import Span

__all__ = ["ProfileNode", "build_profile", "flatten_profile"]


@dataclass
class ProfileNode:
    """One aggregation bucket: every span with this name path."""

    name: str
    path: str  # "/"-joined name path from the root
    count: int = 0
    cum: float = 0.0  # cumulative seconds (sum of span durations)
    children: Dict[str, "ProfileNode"] = field(default_factory=dict)

    @property
    def self_time(self) -> float:
        """Cumulative time not accounted for by child spans."""
        return max(0.0, self.cum - sum(c.cum for c in self.children.values()))

    def sorted_children(self) -> List["ProfileNode"]:
        return sorted(self.children.values(), key=lambda c: -c.cum)

    def find(self, path: str) -> Optional["ProfileNode"]:
        """Look a descendant up by its "/"-joined path suffix."""
        head, _, rest = path.partition("/")
        child = self.children.get(head)
        if child is None:
            return None
        return child if not rest else child.find(rest)


def build_profile(spans: Iterable[Span]) -> List[ProfileNode]:
    """Aggregate finished spans into root :class:`ProfileNode` trees.

    Roots (spans with no recorded parent) are returned hottest-first.
    Spans whose parent never finished are treated as roots too, so a
    partially captured trace still profiles.
    """
    done = [s for s in spans if s.finished]
    by_id = {s.span_id: s for s in done}

    roots: Dict[str, ProfileNode] = {}

    def node_for(s: Span) -> ProfileNode:
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        if parent is None:
            node = roots.get(s.name)
            if node is None:
                node = roots[s.name] = ProfileNode(name=s.name, path=s.name)
            return node
        parent_node = node_for(parent)
        node = parent_node.children.get(s.name)
        if node is None:
            node = parent_node.children[s.name] = ProfileNode(
                name=s.name, path=f"{parent_node.path}/{s.name}"
            )
        return node

    for s in sorted(done, key=lambda s: s.start):
        node = node_for(s)
        node.count += 1
        node.cum += s.duration

    return sorted(roots.values(), key=lambda n: -n.cum)


def flatten_profile(roots: Iterable[ProfileNode]) -> List[ProfileNode]:
    """Depth-first flattening (children hottest-first), for tabulation."""
    out: List[ProfileNode] = []

    def walk(node: ProfileNode) -> None:
        out.append(node)
        for child in node.sorted_children():
            walk(child)

    for root in roots:
        walk(root)
    return out
