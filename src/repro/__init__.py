"""ARCHEX reproduction: optimized selection of reliable and cost-effective
cyber-physical system architectures (Bajaj, Nuzzo, Masin,
Sangiovanni-Vincentelli — DATE 2015).

Public API tour
---------------
* :mod:`repro.ilp` — ILP modeling + exact MILP solvers (YALMIP/CPLEX role);
* :mod:`repro.arch` — component libraries, templates, configurations,
  functional links, walk indicator matrices;
* :mod:`repro.reliability` — exact K-terminal engines (BDD / factoring /
  SDP / inclusion-exclusion), Monte-Carlo, and the approximate algebra of
  §IV-A with the Theorem 2 bound;
* :mod:`repro.synthesis` — ILP-MR (Algorithm 1 + LEARNCONS) and ILP-AR
  (Algorithm 3, eqs. 9-11);
* :mod:`repro.engine` — parallel batch design-space exploration with a
  persistent reliability cache and JSONL run telemetry;
* :mod:`repro.eps` — the aircraft electric power system case study (§V);
* :mod:`repro.domains` — power-grid and communication-network templates
  (the generalizations sketched in §VI).
"""

from .arch import (
    Architecture,
    ArchitectureTemplate,
    ComponentSpec,
    FunctionalLink,
    Library,
    Role,
)
from .reliability import (
    ReliabilityProblem,
    approximate_failure,
    failure_probability,
    sink_failure_probabilities,
    worst_case_failure,
)
from .synthesis import (
    SynthesisResult,
    SynthesisSpec,
    synthesize_ilp_ar,
    synthesize_ilp_mr,
)

__version__ = "0.1.0"

__all__ = [
    "Architecture",
    "ArchitectureTemplate",
    "ComponentSpec",
    "FunctionalLink",
    "Library",
    "ReliabilityProblem",
    "Role",
    "SynthesisResult",
    "SynthesisSpec",
    "__version__",
    "approximate_failure",
    "failure_probability",
    "sink_failure_probabilities",
    "synthesize_ilp_ar",
    "synthesize_ilp_mr",
    "worst_case_failure",
]
