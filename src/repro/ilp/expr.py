"""Linear expressions over decision variables.

This module provides the small algebraic core of the ILP substrate: decision
variables (:class:`Var`) and affine linear expressions (:class:`LinExpr`).
Both support the usual arithmetic operators (``+``, ``-``, ``*`` by a scalar)
and the comparison operators (``<=``, ``>=``, ``==``) which build
:class:`repro.ilp.constraint.Constraint` objects.

The design mirrors what the paper obtained from YALMIP: symbolic affine
expressions over binary edge variables that can be summed, scaled and
compared to form an integer linear program.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Union

Number = Union[int, float]

__all__ = ["Var", "LinExpr", "lin_sum", "as_expr"]


class Var:
    """A single decision variable.

    Variables are created through :meth:`repro.ilp.model.Model.add_var` (or
    the ``add_binary`` / ``add_integer`` / ``add_continuous`` convenience
    wrappers); constructing one directly does not register it with a model.

    Attributes
    ----------
    name:
        Unique (per model) human-readable identifier.
    lb, ub:
        Lower / upper bound. Binary variables use ``(0, 1)``.
    is_integer:
        Whether the variable is integrality-constrained.
    index:
        Dense column index assigned by the owning model.
    """

    __slots__ = ("name", "lb", "ub", "is_integer", "index")

    def __init__(
        self,
        name: str,
        lb: Number = 0.0,
        ub: Number = math.inf,
        is_integer: bool = False,
        index: int = -1,
    ) -> None:
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.is_integer = bool(is_integer)
        self.index = index

    @property
    def is_binary(self) -> bool:
        """True when the variable is integer-valued with bounds in [0, 1]."""
        return self.is_integer and self.lb >= 0.0 and self.ub <= 1.0

    # -- arithmetic ------------------------------------------------------

    def _to_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self._to_expr() + other

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self._to_expr() + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self._to_expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-self._to_expr()) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        return self._to_expr() * scalar

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self._to_expr() * scalar

    def __neg__(self) -> "LinExpr":
        return self._to_expr() * -1.0

    def __truediv__(self, scalar: Number) -> "LinExpr":
        return self._to_expr() * (1.0 / scalar)

    # -- comparisons (produce constraints) --------------------------------

    def __le__(self, other: "ExprLike"):
        return self._to_expr() <= other

    def __ge__(self, other: "ExprLike"):
        return self._to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return self._to_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        kind = "bin" if self.is_binary else ("int" if self.is_integer else "cont")
        return f"Var({self.name!r}, {kind})"


ExprLike = Union[Var, "LinExpr", Number]


class LinExpr:
    """An affine expression ``sum_i coeff_i * var_i + constant``.

    Instances are immutable from the caller's perspective: every operator
    returns a new expression. Terms with coefficient exactly zero are
    dropped eagerly so expressions stay sparse.
    """

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Var, float] | None = None, constant: Number = 0.0) -> None:
        self.terms: Dict[Var, float] = {v: float(c) for v, c in (terms or {}).items() if c != 0.0}
        self.constant = float(constant)

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def _coerce(other: ExprLike) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return other._to_expr()
        if isinstance(other, (int, float)):
            return LinExpr({}, other)
        raise TypeError(f"cannot build a linear expression from {other!r}")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: ExprLike) -> "LinExpr":
        rhs = self._coerce(other)
        terms = dict(self.terms)
        for var, coeff in rhs.terms.items():
            new = terms.get(var, 0.0) + coeff
            if new == 0.0:
                terms.pop(var, None)
            else:
                terms[var] = new
        return LinExpr(terms, self.constant + rhs.constant)

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise TypeError("linear expressions can only be scaled by numbers")
        if scalar == 0.0:
            return LinExpr({}, 0.0)
        return LinExpr({v: c * scalar for v, c in self.terms.items()}, self.constant * scalar)

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self.__mul__(scalar)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __truediv__(self, scalar: Number) -> "LinExpr":
        return self * (1.0 / scalar)

    # -- comparisons -------------------------------------------------------

    def __le__(self, other: ExprLike):
        from .constraint import Constraint

        return Constraint(self - self._coerce(other), "<=")

    def __ge__(self, other: ExprLike):
        from .constraint import Constraint

        return Constraint(self - self._coerce(other), ">=")

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            from .constraint import Constraint

            return Constraint(self - self._coerce(other), "==")
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    # -- evaluation / inspection -------------------------------------------

    def value(self, assignment: Mapping[Var, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(coeff * assignment[var] for var, coeff in self.terms.items())

    def variables(self) -> Iterable[Var]:
        return self.terms.keys()

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{v.name}" for v, c in sorted(self.terms.items(), key=lambda t: t[0].name)]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


def as_expr(value: ExprLike) -> LinExpr:
    """Coerce a variable or number into a :class:`LinExpr`."""
    return LinExpr._coerce(value)


def lin_sum(items: Iterable[ExprLike]) -> LinExpr:
    """Sum an iterable of expressions/variables/numbers efficiently.

    Unlike ``sum(...)`` this builds a single accumulator dict instead of a
    chain of intermediate expressions, which matters for the O(|V|^3 n)
    constraint generation of ILP-AR.
    """
    terms: Dict[Var, float] = {}
    constant = 0.0
    for item in items:
        if isinstance(item, Var):
            terms[item] = terms.get(item, 0.0) + 1.0
        elif isinstance(item, LinExpr):
            constant += item.constant
            for var, coeff in item.terms.items():
                terms[var] = terms.get(var, 0.0) + coeff
        elif isinstance(item, (int, float)):
            constant += item
        else:
            raise TypeError(f"cannot sum {item!r} into a linear expression")
    return LinExpr({v: c for v, c in terms.items() if c != 0.0}, constant)
