"""Branch-and-bound solver for mixed-integer linear programs.

This module supplies the optimizer role that CPLEX played in the paper's
ARCHEX prototype. It is a textbook LP-relaxation branch-and-bound:

* each node solves an LP relaxation (via the from-scratch bounded simplex in
  :mod:`repro.ilp.simplex`, or scipy's HiGHS ``linprog`` when requested);
* with the from-scratch engine, every node inherits its parent's optimal
  basis and re-optimizes with the dual simplex — branching only tightens one
  variable bound, which leaves the parent basis dual feasible — so child
  LPs skip phase 1 entirely (``BnBOptions.warm_start``);
* an initial incumbent can be seeded (:func:`solve_milp`'s ``incumbent``)
  so bound pruning is active from node zero — ILP-MR passes the previous
  iteration's optimum when it is still feasible;
* fractional integer variables are branched on with either most-fractional
  or pseudocost selection;
* node selection is best-bound with depth-first plunging, which finds
  incumbents early while keeping the global dual bound tight.

The solver is exact: on termination without hitting a limit, the incumbent
is optimal within the requested gap.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import obs
from .model import MatrixForm
from .search_events import SearchEventEmitter
from .simplex import LPBasis, LPResult, LPStatus, solve_lp

__all__ = ["BnBOptions", "BnBStats", "solve_milp", "MilpOutcome", "exit_gap"]

_INT_TOL = 1e-6


@dataclass
class BnBOptions:
    """Tuning knobs for the branch-and-bound search."""

    lp_engine: str = "simplex"  # "simplex" (ours) or "scipy" (HiGHS linprog)
    branching: str = "pseudocost"  # or "most_fractional"
    time_limit: Optional[float] = None
    node_limit: Optional[int] = None
    gap: float = 1e-9
    plunge_depth: int = 8  # depth-first plunges between best-bound picks
    #: Warm-start node LPs from the parent's optimal basis via dual simplex
    #: (simplex engine only). Off = the original cold two-phase start per node.
    warm_start: bool = True


@dataclass
class BnBStats:
    nodes: int = 0
    lp_iterations: int = 0
    incumbent_updates: int = 0
    wall_time: float = 0.0
    best_bound: float = -math.inf
    #: Node LPs that re-optimized from an inherited basis (phase 1 skipped).
    warm_lp_solves: int = 0
    #: Node LPs that ran the two-phase cold start.
    cold_lp_solves: int = 0
    dual_pivots: int = 0
    #: True when a caller-supplied incumbent passed validation and seeded
    #: the search (pruning active from node zero).
    seeded_incumbent: bool = False
    #: Nodes fathomed by the bound test while the seeded incumbent was
    #: still the best known solution — prunes attributable to the seed.
    seed_pruned_nodes: int = 0


@dataclass
class MilpOutcome:
    status: str  # "optimal", "infeasible", "unbounded", "limit"
    objective: float
    x: Optional[np.ndarray]
    stats: BnBStats = field(default_factory=BnBStats)
    #: Optimal basis of the root LP relaxation (simplex engine only) —
    #: the seed for cross-solve warm starts after appending constraints.
    root_basis: Optional[LPBasis] = None


@dataclass(order=True)
class _Node:
    bound: float
    tie: int
    depth: int = field(compare=False)
    lb: np.ndarray = field(compare=False, default=None)
    ub: np.ndarray = field(compare=False, default=None)
    basis: Optional[LPBasis] = field(compare=False, default=None)


class _Pseudocosts:
    """Per-variable average objective degradation per unit of fractionality."""

    def __init__(self, n: int) -> None:
        self.up_sum = np.zeros(n)
        self.up_count = np.zeros(n)
        self.down_sum = np.zeros(n)
        self.down_count = np.zeros(n)

    def update(self, var: int, direction: str, frac: float, degradation: float) -> None:
        rate = degradation / max(frac, 1e-9)
        if direction == "up":
            self.up_sum[var] += rate
            self.up_count[var] += 1
        else:
            self.down_sum[var] += rate
            self.down_count[var] += 1

    def score(self, var: int, frac: float) -> float:
        up = self.up_sum[var] / self.up_count[var] if self.up_count[var] else 1.0
        down = self.down_sum[var] / self.down_count[var] if self.down_count[var] else 1.0
        up_est = up * (1.0 - frac)
        down_est = down * frac
        # Standard product score with small linear stabilizer.
        return max(up_est, 1e-6) * max(down_est, 1e-6) + 1e-3 * (up_est + down_est)


def exit_gap(outcome: MilpOutcome) -> Optional[float]:
    """Relative optimality gap at termination.

    0.0 for a proven optimum, ``(incumbent - best_bound) / |incumbent|``
    when the search stopped on a limit with both sides finite, ``None``
    when no meaningful gap exists (infeasible/unbounded, or no bound).
    """
    if outcome.status == "optimal":
        return 0.0
    if outcome.status != "limit" or not math.isfinite(outcome.objective):
        return None
    bound = outcome.stats.best_bound
    if not math.isfinite(bound):
        return None
    return max(0.0, outcome.objective - bound) / max(1.0, abs(outcome.objective))


def _record_bnb_observations(outcome: MilpOutcome) -> None:
    """BnBStats -> process metrics + attributes on the active span."""
    stats = outcome.stats
    obs.counter("ilp.bnb.solves").inc()
    obs.counter("ilp.bnb.nodes").inc(stats.nodes)
    obs.counter("ilp.bnb.lp_iterations").inc(stats.lp_iterations)
    obs.counter("ilp.bnb.incumbents").inc(stats.incumbent_updates)
    obs.counter("ilp.bnb.warm_lp_solves").inc(stats.warm_lp_solves)
    obs.counter("ilp.bnb.cold_lp_solves").inc(stats.cold_lp_solves)
    if stats.seeded_incumbent:
        obs.counter("ilp.bnb.seeded_incumbents").inc()
        obs.counter("ilp.bnb.seed_pruned_nodes").inc(stats.seed_pruned_nodes)
    obs.histogram("ilp.bnb.seconds").observe(stats.wall_time)
    gap = exit_gap(outcome)
    if gap is not None:
        obs.gauge("ilp.bnb.gap_at_exit").set(gap)
    s = obs.current_span()
    if s is not None:
        s.set_attr("bnb_nodes", stats.nodes)
        s.set_attr("bnb_incumbents", stats.incumbent_updates)
        s.set_attr("bnb_warm_lp_solves", stats.warm_lp_solves)
        if gap is not None:
            s.set_attr("bnb_gap_at_exit", gap)


def solve_milp(
    form: MatrixForm,
    options: Optional[BnBOptions] = None,
    incumbent: Optional[np.ndarray] = None,
    basis: Optional[LPBasis] = None,
) -> MilpOutcome:
    """Minimize ``form.c @ x`` over the mixed-integer feasible set.

    ``incumbent`` optionally seeds the search with a known feasible point
    (e.g. the previous CEGIS iteration's optimum); it is validated against
    the current constraints and silently ignored when infeasible or stale.
    ``basis`` warm-starts the *root* LP from a previous solve of a related
    model (extended over any appended rows via
    :func:`repro.ilp.incremental.extend_basis`); a stale basis simply falls
    back to a cold root solve.
    """
    outcome = _solve_milp_search(form, options, incumbent, basis)
    if obs.enabled():
        _record_bnb_observations(outcome)
    return outcome


def _validate_incumbent(form: MatrixForm, x: np.ndarray) -> Optional[float]:
    """Objective of a seed point, or None when it is not MILP-feasible."""
    if x is None or len(x) != form.num_vars:
        return None
    x = np.asarray(x, dtype=float)
    if not np.all(np.isfinite(x)):
        return None
    if np.any(x < form.lb - _INT_TOL) or np.any(x > form.ub + _INT_TOL):
        return None
    frac = np.abs(x[form.integrality] - np.round(x[form.integrality]))
    if frac.size and frac.max(initial=0.0) > _INT_TOL:
        return None
    if form.num_constrs:
        lhs = form.A @ x
        scale = 1.0 + np.abs(form.b)
        for i, sense in enumerate(form.senses):
            resid = lhs[i] - form.b[i]
            if sense == "<=" and resid > 1e-7 * scale[i]:
                return None
            if sense == ">=" and resid < -1e-7 * scale[i]:
                return None
            if sense == "==" and abs(resid) > 1e-7 * scale[i]:
                return None
    return float(form.c @ x)


def _solve_milp_search(
    form: MatrixForm,
    options: Optional[BnBOptions] = None,
    incumbent: Optional[np.ndarray] = None,
    basis: Optional[LPBasis] = None,
) -> MilpOutcome:
    opts = options or BnBOptions()
    start = time.perf_counter()
    stats = BnBStats()
    emitter = SearchEventEmitter.for_active_sink()
    pruned_nodes = 0
    n = form.num_vars
    int_mask = form.integrality
    counter = itertools.count()

    dense_a = form.dense_A()  # B&B is dispatched to small models only
    use_simplex = opts.lp_engine != "scipy"

    def lp_solve(
        lb: np.ndarray, ub: np.ndarray, basis: Optional[LPBasis] = None
    ) -> LPResult:
        if not use_simplex:
            return _scipy_lp(form, dense_a, lb, ub)
        res = solve_lp(
            form.c, dense_a, form.senses, form.b, lb, ub,
            warm_basis=basis if opts.warm_start else None,
            want_basis=opts.warm_start,
        )
        if res.warm_started:
            stats.warm_lp_solves += 1
        else:
            stats.cold_lp_solves += 1
        stats.dual_pivots += res.dual_pivots
        return res

    root = _Node(bound=-math.inf, tie=next(counter), depth=0,
                 lb=form.lb.copy(), ub=form.ub.copy(), basis=basis)
    heap: List[_Node] = [root]
    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    if incumbent is not None:
        seed_obj = _validate_incumbent(form, incumbent)
        if seed_obj is not None:
            incumbent_x = _snap(np.asarray(incumbent, dtype=float), int_mask)
            incumbent_obj = seed_obj
            stats.seeded_incumbent = True
            stats.incumbent_updates += 1
    pseudo = _Pseudocosts(n)
    seed_active = stats.seeded_incumbent
    hit_limit = False
    root_status: Optional[LPStatus] = None
    root_basis: Optional[LPBasis] = None

    while heap:
        if opts.time_limit is not None and time.perf_counter() - start > opts.time_limit:
            hit_limit = True
            break
        if opts.node_limit is not None and stats.nodes >= opts.node_limit:
            hit_limit = True
            break

        node = heapq.heappop(heap)
        if node.bound >= incumbent_obj - opts.gap:
            if seed_active:
                stats.seed_pruned_nodes += 1
            pruned_nodes += 1
            if emitter is not None:
                emitter.emit("prune", reason="bound", depth=node.depth,
                             bound=node.bound, incumbent=incumbent_obj)
            continue  # pruned by bound

        # Depth-first plunge from this node.
        plunge: Optional[_Node] = node
        for _ in range(max(1, opts.plunge_depth)):
            if plunge is None:
                break
            stats.nodes += 1
            res = lp_solve(plunge.lb, plunge.ub, plunge.basis)
            stats.lp_iterations += res.iterations
            if emitter is not None:
                emitter.emit(
                    "open", node=stats.nodes, depth=plunge.depth,
                    bound=res.objective if res.is_optimal else None,
                )
            if stats.nodes == 1:
                root_status = res.status
                root_basis = res.basis
            if res.status is LPStatus.UNBOUNDED:
                if stats.nodes == 1:
                    if emitter is not None:
                        emitter.close(nodes=stats.nodes, pruned=pruned_nodes,
                                      incumbents=stats.incumbent_updates,
                                      status="unbounded")
                    return MilpOutcome("unbounded", -math.inf, None, stats)
                plunge = None
                continue
            if not res.is_optimal or res.objective >= incumbent_obj - opts.gap:
                if seed_active and res.is_optimal:
                    stats.seed_pruned_nodes += 1
                pruned_nodes += 1
                if emitter is not None:
                    emitter.emit(
                        "prune",
                        reason="relaxation" if res.is_optimal
                        else "infeasible",
                        node=stats.nodes, depth=plunge.depth,
                        bound=res.objective if res.is_optimal else None,
                        incumbent=incumbent_obj,
                    )
                plunge = None
                continue

            frac_var = _most_fractional(res.x, int_mask)
            if frac_var is None:
                # Integer-feasible: new incumbent.
                if res.objective < incumbent_obj - opts.gap:
                    incumbent_obj = res.objective
                    incumbent_x = _snap(res.x, int_mask)
                    stats.incumbent_updates += 1
                    seed_active = False
                    if obs.enabled():
                        # Live gauge the `repro top` incumbent trail polls
                        # while a long solve is still running.
                        obs.gauge("ilp.bnb.incumbent_objective").set(
                            float(incumbent_obj)
                        )
                    if emitter is not None:
                        emitter.emit(
                            "incumbent", node=stats.nodes,
                            depth=plunge.depth, objective=incumbent_obj,
                        )
                plunge = None
                continue

            var = _select_branch_var(res.x, int_mask, opts.branching, pseudo, form.c)
            value = res.x[var]
            frac = value - math.floor(value)
            # Rounding heuristic: try the nearest integer completion.
            _try_rounding(form, res.x, int_mask, lp_solve, plunge, stats)

            down = _Node(bound=res.objective, tie=next(counter), depth=plunge.depth + 1,
                         lb=plunge.lb.copy(), ub=plunge.ub.copy(), basis=res.basis)
            down.ub[var] = math.floor(value)
            up = _Node(bound=res.objective, tie=next(counter), depth=plunge.depth + 1,
                       lb=plunge.lb.copy(), ub=plunge.ub.copy(), basis=res.basis)
            up.lb[var] = math.ceil(value)
            if emitter is not None:
                emitter.emit(
                    "branch", node=stats.nodes, depth=plunge.depth,
                    var=int(var), frac=round(frac, 6), bound=res.objective,
                )
            _record_pseudocost(pseudo, var, frac, res.objective, down, up, lp_solve, stats)

            # Continue the plunge in the more promising child, queue the other.
            if frac <= 0.5:
                heapq.heappush(heap, up)
                plunge = down
            else:
                heapq.heappush(heap, down)
                plunge = up
        else:
            if plunge is not None:
                heapq.heappush(heap, plunge)

        # Re-check incumbent-based pruning cheaply between plunges.
        if incumbent_x is not None and heap:
            best = heap[0].bound
            stats.best_bound = max(stats.best_bound, best)
            if incumbent_obj - best <= opts.gap * max(1.0, abs(incumbent_obj)):
                break

    stats.wall_time = time.perf_counter() - start
    if emitter is not None:
        emitter.close(
            nodes=stats.nodes, pruned=pruned_nodes,
            incumbents=stats.incumbent_updates,
            best_bound=stats.best_bound,
            objective=incumbent_obj if incumbent_x is not None else None,
            wall_time=round(stats.wall_time, 9),
        )
    if incumbent_x is None:
        if hit_limit:
            return MilpOutcome("limit", math.inf, None, stats, root_basis=root_basis)
        if root_status is LPStatus.UNBOUNDED:
            return MilpOutcome("unbounded", -math.inf, None, stats,
                               root_basis=root_basis)
        return MilpOutcome("infeasible", math.inf, None, stats, root_basis=root_basis)
    status = "limit" if hit_limit and heap else "optimal"
    return MilpOutcome(status, incumbent_obj, incumbent_x, stats,
                       root_basis=root_basis)


# -- helpers -----------------------------------------------------------------


def _most_fractional(x: np.ndarray, int_mask: np.ndarray) -> Optional[int]:
    """Index of the integer variable farthest from integrality, or None."""
    worst = None
    worst_dist = _INT_TOL
    for j in np.flatnonzero(int_mask):
        dist = abs(x[j] - round(x[j]))
        if dist > worst_dist:
            worst_dist = dist
            worst = int(j)
    return worst


def _select_branch_var(
    x: np.ndarray,
    int_mask: np.ndarray,
    strategy: str,
    pseudo: _Pseudocosts,
    c: np.ndarray,
) -> int:
    fractional = [
        int(j) for j in np.flatnonzero(int_mask) if abs(x[j] - round(x[j])) > _INT_TOL
    ]
    if strategy == "pseudocost":
        def score(j: int) -> float:
            frac = x[j] - math.floor(x[j])
            return pseudo.score(j, frac)

        return max(fractional, key=score)
    # most_fractional
    return max(fractional, key=lambda j: abs(x[j] - round(x[j])))


def _snap(x: np.ndarray, int_mask: np.ndarray) -> np.ndarray:
    snapped = x.copy()
    snapped[int_mask] = np.round(snapped[int_mask])
    return snapped


def _record_pseudocost(pseudo, var, frac, parent_obj, down, up, lp_solve, stats) -> None:
    """Cheap pseudocost seeding: note the LP degradation of each child once.

    Children LPs are solved lazily during the search anyway; here we only
    record degradations for variables we have never branched on, using a
    single LP per direction, to bootstrap the pseudocost scores.
    """
    if pseudo.up_count[var] or pseudo.down_count[var]:
        return
    for child, direction, f in ((down, "down", frac), (up, "up", 1.0 - frac)):
        res = lp_solve(child.lb, child.ub, child.basis)
        stats.lp_iterations += res.iterations
        if res.is_optimal:
            pseudo.update(var, direction, f, max(0.0, res.objective - parent_obj))
            child.bound = max(child.bound, res.objective)
        else:
            pseudo.update(var, direction, f, 1e6)


def _try_rounding(form, x, int_mask, lp_solve, node, stats) -> None:
    """Placeholder hook kept cheap: full rounding repair is done by plunging.

    Plunging with floor/ceil branching already acts as a diving heuristic,
    so an extra LP-based rounding repair rarely pays off at our scales; the
    hook exists so ablation benchmarks can substitute richer heuristics.
    """
    return None


def _scipy_lp(
    form: MatrixForm, dense_a: np.ndarray, lb: np.ndarray, ub: np.ndarray
) -> LPResult:
    """LP relaxation via scipy's HiGHS simplex/IPM."""
    from scipy.optimize import linprog

    a_ub_rows = []
    b_ub = []
    a_eq_rows = []
    b_eq = []
    for i, sense in enumerate(form.senses):
        if sense == "<=":
            a_ub_rows.append(dense_a[i])
            b_ub.append(form.b[i])
        elif sense == ">=":
            a_ub_rows.append(-dense_a[i])
            b_ub.append(-form.b[i])
        else:
            a_eq_rows.append(dense_a[i])
            b_eq.append(form.b[i])
    res = linprog(
        form.c,
        A_ub=np.array(a_ub_rows) if a_ub_rows else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq_rows) if a_eq_rows else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=list(zip(lb, ub)),
        method="highs",
    )
    iterations = int(res.nit) if hasattr(res, "nit") else 0
    if res.status == 0:
        return LPResult(LPStatus.OPTIMAL, float(res.fun), np.asarray(res.x), iterations)
    if res.status == 2:
        return LPResult(LPStatus.INFEASIBLE, math.nan, None, iterations)
    if res.status == 3:
        return LPResult(LPStatus.UNBOUNDED, math.nan, None, iterations)
    return LPResult(LPStatus.ITERATION_LIMIT, math.nan, None, iterations)
