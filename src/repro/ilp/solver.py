"""Solver front-end: dispatch a model to a MILP backend and wrap the result.

Backends
--------
``"bnb"``
    The from-scratch branch-and-bound of :mod:`repro.ilp.branch_and_bound`
    over the from-scratch simplex. No third-party optimizer involved.
``"scipy"``
    scipy's bundled HiGHS MILP (closest available stand-in for the paper's
    CPLEX).
``"auto"``
    HiGHS when available and the model is large; otherwise branch-and-bound.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .. import obs
from .branch_and_bound import BnBOptions, BnBStats, MilpOutcome, solve_milp
from .expr import LinExpr, Var
from .incremental import WarmStartContext
from .model import Model
from .scipy_backend import scipy_milp_available, solve_with_scipy

__all__ = ["AutoTuning", "SolveResult", "Status", "configure_auto", "solve"]


@dataclass
class AutoTuning:
    """Dispatch thresholds for the ``"auto"`` backend.

    ``auto`` routes to HiGHS when the model exceeds *either* threshold and
    scipy is importable, otherwise to the from-scratch branch-and-bound.
    Defaults were recalibrated from the ``BENCH_ilp.json`` scaling sweep
    after the warm-start work: with basis inheritance the from-scratch
    solver beats HiGHS up to roughly 80 binaries / 150 rows on the
    set-cover-shaped models this project produces (it was cut over at 60
    variables before), and falls behind quickly after. Override per call
    (``solve(..., tuning=...)``), per process (:func:`configure_auto`,
    which the CLI's ``--auto-scipy-vars`` / ``--auto-scipy-constrs`` flags
    use), or not at all.
    """

    scipy_vars: int = 80
    scipy_constrs: int = 200

    def prefers_scipy(self, num_vars: int, num_constrs: int) -> bool:
        return num_vars > self.scipy_vars or num_constrs > self.scipy_constrs


_DEFAULT_TUNING = AutoTuning()


def configure_auto(
    scipy_vars: Optional[int] = None, scipy_constrs: Optional[int] = None
) -> AutoTuning:
    """Override the process-wide ``auto`` thresholds; returns the active set."""
    if scipy_vars is not None:
        _DEFAULT_TUNING.scipy_vars = scipy_vars
    if scipy_constrs is not None:
        _DEFAULT_TUNING.scipy_constrs = scipy_constrs
    return _DEFAULT_TUNING


class Status:
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"


@dataclass
class SolveResult:
    """Outcome of a model solve.

    ``objective`` is reported in the model's own sense (flipped back for
    maximization). ``values`` maps every model variable to its value; integer
    variables are snapped to exact integers.
    """

    status: str
    objective: float
    values: Dict[Var, float] = field(default_factory=dict)
    backend: str = ""
    wall_time: float = 0.0
    stats: BnBStats = field(default_factory=BnBStats)

    @property
    def is_optimal(self) -> bool:
        return self.status == Status.OPTIMAL

    def __getitem__(self, key) -> float:
        if isinstance(key, Var):
            return self.values[key]
        if isinstance(key, LinExpr):
            return key.value(self.values)
        raise KeyError(key)

    def value(self, expr) -> float:
        """Evaluate a variable or expression under this solution."""
        return self[expr]


def solve(
    model: Model,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
    use_presolve: bool = False,
    options: Optional[BnBOptions] = None,
    warm: Optional[WarmStartContext] = None,
    tuning: Optional[AutoTuning] = None,
) -> SolveResult:
    """Solve ``model`` and return a :class:`SolveResult`.

    ``use_presolve`` applies the safe reductions of
    :mod:`repro.ilp.presolve` before dispatching (HiGHS presolves
    internally anyway; this mainly helps the from-scratch backend).

    ``warm`` carries state across repeated solves of a growing model
    (ILP-MR's loop): the export is incremental, and with the ``bnb``
    backend the root LP re-optimizes from the previous optimal basis and
    the previous optimum seeds the incumbent. Scipy/HiGHS has no warm
    interface, so there the context only accelerates the export.
    """
    start = time.perf_counter()
    form = warm.refresh(model) if warm is not None else model.to_matrix_form()

    if form.num_vars == 0:
        # Degenerate model: every row's lhs is the constant 0.
        feasible = all(
            (0.0 <= rhs + 1e-9 if sense == "<=" else
             0.0 >= rhs - 1e-9 if sense == ">=" else abs(rhs) <= 1e-9)
            for sense, rhs in zip(form.senses, form.b)
        )
        outcome = MilpOutcome(
            "optimal" if feasible else "infeasible",
            0.0 if feasible else math.inf,
            np.zeros(0) if feasible else None,
        )
        return _wrap(model, form, outcome, "const", time.perf_counter() - start)

    chosen = backend
    if backend == "auto":
        knobs = tuning or _DEFAULT_TUNING
        big = knobs.prefers_scipy(form.num_vars, form.num_constrs)
        chosen = "scipy" if big and scipy_milp_available() else "bnb"

    if chosen == "scipy":
        def run(f):
            return solve_with_scipy(f, time_limit=time_limit, mip_rel_gap=mip_rel_gap)
    elif chosen == "bnb":
        opts = options or BnBOptions()
        if time_limit is not None:
            opts.time_limit = time_limit
        if mip_rel_gap is not None:
            opts.gap = mip_rel_gap

        def run(f):
            # Presolve rewrites the form, so the carried basis/incumbent
            # only apply to the untransformed export.
            if warm is not None and f is form:
                outcome = solve_milp(
                    f, opts, incumbent=warm.incumbent, basis=warm.basis
                )
                warm.absorb(outcome)
                return outcome
            return solve_milp(f, opts)
    else:
        raise ValueError(f"unknown backend {backend!r}")

    with obs.span(
        "ilp.solve",
        backend=chosen,
        variables=form.num_vars,
        constraints=form.num_constrs,
    ) as s:
        if use_presolve:
            from .presolve import apply_presolve

            outcome = apply_presolve(form, run)
        else:
            outcome = run(form)
        s.set_attr("status", outcome.status)

    wall = time.perf_counter() - start
    return _wrap(model, form, outcome, chosen, wall)


def _wrap(model: Model, form, outcome: MilpOutcome, backend: str, wall: float) -> SolveResult:
    values: Dict[Var, float] = {}
    objective = outcome.objective
    if outcome.x is not None:
        x = np.asarray(outcome.x, dtype=float)
        for var in form.variables:
            val = float(x[var.index])
            if var.is_integer:
                val = float(round(val))
            values[var] = val
        objective = model.objective.value(values)
    elif math.isfinite(objective) and model.sense == "max":
        objective = -objective
    return SolveResult(
        status=outcome.status,
        objective=objective,
        values=values,
        backend=backend,
        wall_time=wall,
        stats=outcome.stats,
    )
