"""Solver front-end: dispatch a model to a MILP backend and wrap the result.

Backends
--------
``"bnb"``
    The from-scratch branch-and-bound of :mod:`repro.ilp.branch_and_bound`
    over the from-scratch simplex. No third-party optimizer involved.
``"scipy"``
    scipy's bundled HiGHS MILP (closest available stand-in for the paper's
    CPLEX).
``"auto"``
    HiGHS when available and the model is large; otherwise branch-and-bound.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .. import obs
from .branch_and_bound import BnBOptions, BnBStats, MilpOutcome, solve_milp
from .expr import LinExpr, Var
from .model import Model
from .scipy_backend import scipy_milp_available, solve_with_scipy

__all__ = ["SolveResult", "Status", "solve"]

# Model sizes above which "auto" prefers the HiGHS backend.
_AUTO_SCIPY_VARS = 60
_AUTO_SCIPY_CONSTRS = 150


class Status:
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"


@dataclass
class SolveResult:
    """Outcome of a model solve.

    ``objective`` is reported in the model's own sense (flipped back for
    maximization). ``values`` maps every model variable to its value; integer
    variables are snapped to exact integers.
    """

    status: str
    objective: float
    values: Dict[Var, float] = field(default_factory=dict)
    backend: str = ""
    wall_time: float = 0.0
    stats: BnBStats = field(default_factory=BnBStats)

    @property
    def is_optimal(self) -> bool:
        return self.status == Status.OPTIMAL

    def __getitem__(self, key) -> float:
        if isinstance(key, Var):
            return self.values[key]
        if isinstance(key, LinExpr):
            return key.value(self.values)
        raise KeyError(key)

    def value(self, expr) -> float:
        """Evaluate a variable or expression under this solution."""
        return self[expr]


def solve(
    model: Model,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
    use_presolve: bool = False,
    options: Optional[BnBOptions] = None,
) -> SolveResult:
    """Solve ``model`` and return a :class:`SolveResult`.

    ``use_presolve`` applies the safe reductions of
    :mod:`repro.ilp.presolve` before dispatching (HiGHS presolves
    internally anyway; this mainly helps the from-scratch backend).
    """
    start = time.perf_counter()
    form = model.to_matrix_form()

    if form.num_vars == 0:
        # Degenerate model: every row's lhs is the constant 0.
        feasible = all(
            (0.0 <= rhs + 1e-9 if sense == "<=" else
             0.0 >= rhs - 1e-9 if sense == ">=" else abs(rhs) <= 1e-9)
            for sense, rhs in zip(form.senses, form.b)
        )
        outcome = MilpOutcome(
            "optimal" if feasible else "infeasible",
            0.0 if feasible else math.inf,
            np.zeros(0) if feasible else None,
        )
        return _wrap(model, form, outcome, "const", time.perf_counter() - start)

    chosen = backend
    if backend == "auto":
        big = form.num_vars > _AUTO_SCIPY_VARS or form.num_constrs > _AUTO_SCIPY_CONSTRS
        chosen = "scipy" if big and scipy_milp_available() else "bnb"

    if chosen == "scipy":
        def run(f):
            return solve_with_scipy(f, time_limit=time_limit, mip_rel_gap=mip_rel_gap)
    elif chosen == "bnb":
        opts = options or BnBOptions()
        if time_limit is not None:
            opts.time_limit = time_limit
        if mip_rel_gap is not None:
            opts.gap = mip_rel_gap

        def run(f):
            return solve_milp(f, opts)
    else:
        raise ValueError(f"unknown backend {backend!r}")

    with obs.span(
        "ilp.solve",
        backend=chosen,
        variables=form.num_vars,
        constraints=form.num_constrs,
    ) as s:
        if use_presolve:
            from .presolve import apply_presolve

            outcome = apply_presolve(form, run)
        else:
            outcome = run(form)
        s.set_attr("status", outcome.status)

    wall = time.perf_counter() - start
    return _wrap(model, form, outcome, chosen, wall)


def _wrap(model: Model, form, outcome: MilpOutcome, backend: str, wall: float) -> SolveResult:
    values: Dict[Var, float] = {}
    objective = outcome.objective
    if outcome.x is not None:
        x = np.asarray(outcome.x, dtype=float)
        for var in form.variables:
            val = float(x[var.index])
            if var.is_integer:
                val = float(round(val))
            values[var] = val
        objective = model.objective.value(values)
    elif math.isfinite(objective) and model.sense == "max":
        objective = -objective
    return SolveResult(
        status=outcome.status,
        objective=objective,
        values=values,
        backend=backend,
        wall_time=wall,
        stats=outcome.stats,
    )
