"""ILP substrate: modeling API and exact MILP solvers.

This package stands in for the YALMIP + CPLEX stack used by the paper's
ARCHEX prototype. It provides:

* an algebraic modeling layer (:class:`Model`, :class:`Var`,
  :class:`LinExpr`, :class:`Constraint`);
* linearization helpers for the Boolean operations appearing in the paper's
  constraint formulations (:mod:`repro.ilp.logic`);
* two exact MILP backends — a from-scratch bounded-variable simplex with
  branch-and-bound, and scipy's HiGHS.
"""

from .branch_and_bound import BnBOptions, BnBStats, solve_milp
from .constraint import Constraint
from .expr import LinExpr, Var, as_expr, lin_sum
from .logic import (
    and_,
    at_least,
    at_most,
    count_indicators,
    exactly,
    iff,
    implies,
    not_,
    or_,
)
from .incremental import WarmStartContext, extend_basis
from .model import MatrixForm, Model
from .presolve import PresolveResult, apply_presolve, presolve
from .search_events import (
    SearchEventEmitter,
    capture_search_events,
    search_sink,
    set_search_sink,
)
from .simplex import LPBasis, LPResult, LPStatus, bland_cutover, solve_lp
from .solver import AutoTuning, SolveResult, Status, configure_auto, solve

__all__ = [
    "Model",
    "MatrixForm",
    "PresolveResult",
    "apply_presolve",
    "presolve",
    "Var",
    "LinExpr",
    "Constraint",
    "as_expr",
    "lin_sum",
    "or_",
    "and_",
    "not_",
    "implies",
    "iff",
    "at_least",
    "at_most",
    "exactly",
    "count_indicators",
    "solve",
    "solve_lp",
    "solve_milp",
    "SolveResult",
    "Status",
    "LPResult",
    "LPStatus",
    "LPBasis",
    "BnBOptions",
    "BnBStats",
    "WarmStartContext",
    "extend_basis",
    "AutoTuning",
    "configure_auto",
    "bland_cutover",
    "SearchEventEmitter",
    "capture_search_events",
    "search_sink",
    "set_search_sink",
]
