"""MILP presolve: cheap reductions applied before branch-and-bound.

The eager encodings (ILP-AR, ILP-TSE) emit many structurally trivial rows —
forced binaries (``x <= 0`` next to ``x``-monotone logic chains), singleton
rows that are really bounds, and rows made redundant by the variable
bounds. This module implements the classical safe reductions:

* **singleton rows** become variable bounds and are dropped;
* **activity-based row analysis**: a row whose min/max activity already
  implies the constraint is dropped; one that contradicts it proves
  infeasibility immediately;
* **bound propagation**: per-row implied bounds tighten variable bounds
  (with integral rounding for integer variables), iterated to a fixpoint;
* **fixed-variable substitution**: variables with ``lb == ub`` leave the
  problem.

All reductions are *safe*: they preserve the set of optimal solutions
exactly (no dominance/probing reductions that only preserve the optimum
value). The result maps cleanly back to the original variable space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from .model import MatrixForm

__all__ = ["PresolveResult", "presolve", "apply_presolve"]

_TOL = 1e-9
_MAX_PASSES = 10


@dataclass
class PresolveResult:
    """Outcome of presolving a matrix form.

    ``reduced`` is None when presolve proved infeasibility. ``kept_rows``
    and ``kept_cols`` map reduced indices back to original ones;
    ``fixed_values`` holds original-index values of eliminated variables.
    """

    status: str  # "reduced", "infeasible", "solved"
    reduced: Optional[MatrixForm]
    kept_rows: List[int] = field(default_factory=list)
    kept_cols: List[int] = field(default_factory=list)
    fixed_values: Dict[int, float] = field(default_factory=dict)
    objective_offset: float = 0.0
    rows_removed: int = 0
    bounds_tightened: int = 0

    def restore(self, x_reduced: np.ndarray) -> np.ndarray:
        """Lift a reduced-space solution back to the original variables."""
        n = len(self.kept_cols) + len(self.fixed_values)
        x = np.zeros(n)
        for idx, value in self.fixed_values.items():
            x[idx] = value
        for reduced_idx, original_idx in enumerate(self.kept_cols):
            x[original_idx] = x_reduced[reduced_idx]
        return x


def _row_activity(
    coeffs: np.ndarray, cols: np.ndarray, lb: np.ndarray, ub: np.ndarray
) -> Tuple[float, float]:
    """(min, max) achievable value of a sparse row under current bounds."""
    low = 0.0
    high = 0.0
    for c, j in zip(coeffs, cols):
        if c > 0:
            low += c * lb[j]
            high += c * ub[j]
        else:
            low += c * ub[j]
            high += c * lb[j]
    return low, high


def presolve(form: MatrixForm) -> PresolveResult:
    """Run the reduction passes on a matrix form."""
    a = form.A.tocsr() if sparse.issparse(form.A) else sparse.csr_matrix(form.A)
    lb = form.lb.copy()
    ub = form.ub.copy()
    senses = list(form.senses)
    b = form.b.copy()
    n = form.num_vars
    m = form.num_constrs
    integrality = form.integrality
    alive_rows = np.ones(m, dtype=bool)
    tightened = 0

    def tighten(j: int, new_lb: Optional[float], new_ub: Optional[float]) -> bool:
        """Apply a bound; returns False on contradiction."""
        nonlocal tightened
        if new_lb is not None:
            if integrality[j]:
                new_lb = math.ceil(new_lb - _TOL)
            if new_lb > lb[j] + _TOL:
                lb[j] = new_lb
                tightened += 1
        if new_ub is not None:
            if integrality[j]:
                new_ub = math.floor(new_ub + _TOL)
            if new_ub < ub[j] - _TOL:
                ub[j] = new_ub
                tightened += 1
        return lb[j] <= ub[j] + _TOL

    for _ in range(_MAX_PASSES):
        changed = False
        for i in range(m):
            if not alive_rows[i]:
                continue
            start, end = a.indptr[i], a.indptr[i + 1]
            cols = a.indices[start:end]
            coeffs = a.data[start:end]
            nonzero = np.abs(coeffs) > _TOL
            cols, coeffs = cols[nonzero], coeffs[nonzero]
            sense, rhs = senses[i], b[i]

            if len(cols) == 0:
                ok = (
                    rhs >= -_TOL if sense == "<=" else
                    rhs <= _TOL if sense == ">=" else abs(rhs) <= _TOL
                )
                if not ok:
                    return PresolveResult("infeasible", None)
                alive_rows[i] = False
                changed = True
                continue

            if len(cols) == 1:
                # Singleton: convert to a bound and drop the row.
                j, c = int(cols[0]), float(coeffs[0])
                value = rhs / c
                if sense == "==":
                    ok = tighten(j, value, value)
                elif (sense == "<=" and c > 0) or (sense == ">=" and c < 0):
                    ok = tighten(j, None, value)
                else:
                    ok = tighten(j, value, None)
                if not ok:
                    return PresolveResult("infeasible", None)
                alive_rows[i] = False
                changed = True
                continue

            low, high = _row_activity(coeffs, cols, lb, ub)
            # Redundancy / infeasibility by activity bounds.
            if sense == "<=":
                if high <= rhs + _TOL:
                    alive_rows[i] = False
                    changed = True
                    continue
                if low > rhs + _TOL:
                    return PresolveResult("infeasible", None)
            elif sense == ">=":
                if low >= rhs - _TOL:
                    alive_rows[i] = False
                    changed = True
                    continue
                if high < rhs - _TOL:
                    return PresolveResult("infeasible", None)
            else:
                if low > rhs + _TOL or high < rhs - _TOL:
                    return PresolveResult("infeasible", None)
                if abs(low - rhs) <= _TOL and abs(high - rhs) <= _TOL:
                    alive_rows[i] = False
                    changed = True
                    continue

            # Bound propagation on each variable of the row.
            for c, j in zip(coeffs, cols):
                j = int(j)
                others_low = low - (c * lb[j] if c > 0 else c * ub[j])
                others_high = high - (c * ub[j] if c > 0 else c * lb[j])
                if sense in ("<=", "==") and math.isfinite(others_low):
                    slack = rhs - others_low
                    if c > 0:
                        ok = tighten(j, None, slack / c)
                    else:
                        ok = tighten(j, slack / c, None)
                    if not ok:
                        return PresolveResult("infeasible", None)
                if sense in (">=", "==") and math.isfinite(others_high):
                    need = rhs - others_high
                    if c > 0:
                        ok = tighten(j, need / c, None)
                    else:
                        ok = tighten(j, None, need / c)
                    if not ok:
                        return PresolveResult("infeasible", None)
        if not changed:
            break

    # Split fixed vs free variables.
    fixed: Dict[int, float] = {}
    kept_cols: List[int] = []
    for j in range(n):
        if ub[j] - lb[j] <= _TOL and math.isfinite(lb[j]):
            fixed[j] = round(lb[j]) if integrality[j] else lb[j]
        else:
            kept_cols.append(j)

    # Substitute fixed variables into rows and the objective.
    offset = float(sum(form.c[j] * v for j, v in fixed.items()))
    kept_rows = [i for i in range(m) if alive_rows[i]]

    col_map = {orig: new for new, orig in enumerate(kept_cols)}
    rows_out: List[int] = []
    cols_out: List[int] = []
    data_out: List[float] = []
    b_out: List[float] = []
    senses_out: List[str] = []
    for new_i, i in enumerate(kept_rows):
        start, end = a.indptr[i], a.indptr[i + 1]
        rhs = b[i]
        for c, j in zip(a.data[start:end], a.indices[start:end]):
            j = int(j)
            if j in fixed:
                rhs -= c * fixed[j]
            elif abs(c) > _TOL:
                rows_out.append(new_i)
                cols_out.append(col_map[j])
                data_out.append(float(c))
        b_out.append(rhs)
        senses_out.append(senses[i])

    if not kept_cols:
        # Everything fixed: check remaining rows as constants.
        for rhs, sense in zip(b_out, senses_out):
            ok = (
                rhs >= -_TOL if sense == "<=" else
                rhs <= _TOL if sense == ">=" else abs(rhs) <= _TOL
            )
            if not ok:
                return PresolveResult("infeasible", None)
        result = PresolveResult(
            "solved", None, kept_rows=[], kept_cols=[], fixed_values=fixed,
            objective_offset=offset, rows_removed=m - len(kept_rows),
            bounds_tightened=tightened,
        )
        return result

    reduced = MatrixForm(
        c=form.c[kept_cols],
        obj_constant=form.obj_constant + offset,
        A=sparse.csr_matrix(
            (data_out, (rows_out, cols_out)),
            shape=(len(kept_rows), len(kept_cols)),
        ),
        senses=senses_out,
        b=np.array(b_out),
        lb=lb[kept_cols],
        ub=ub[kept_cols],
        integrality=integrality[kept_cols],
        variables=[form.variables[j] for j in kept_cols] if form.variables else [],
    )
    return PresolveResult(
        "reduced",
        reduced,
        kept_rows=kept_rows,
        kept_cols=kept_cols,
        fixed_values=fixed,
        objective_offset=offset,
        rows_removed=m - len(kept_rows),
        bounds_tightened=tightened,
    )


def apply_presolve(form: MatrixForm, solve_fn):
    """Presolve, solve the reduced problem with ``solve_fn``, lift back.

    ``solve_fn(reduced_form) -> MilpOutcome``-like object with ``status``,
    ``objective`` and ``x`` attributes. Returns an object of the same shape
    in the ORIGINAL variable space.
    """
    from .branch_and_bound import MilpOutcome

    result = presolve(form)
    if result.status == "infeasible":
        return MilpOutcome("infeasible", math.inf, None)
    if result.status == "solved":
        x = result.restore(np.zeros(0))
        objective = float(form.c @ x)
        return MilpOutcome("optimal", objective, x)
    outcome = solve_fn(result.reduced)
    if outcome.x is None:
        return outcome
    x = result.restore(np.asarray(outcome.x))
    objective = float(form.c @ x)
    return MilpOutcome(outcome.status, objective, x, outcome.stats)
