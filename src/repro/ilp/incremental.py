"""Cross-solve warm starts for incrementally grown models.

ILP-MR (Algorithm 1) re-solves what is almost the same 0-1 ILP every
iteration: LEARNCONS only *appends* ``>=`` rows over existing variables.
:class:`WarmStartContext` carries the three reusable artifacts between those
solves:

* the previous :class:`~repro.ilp.model.MatrixForm`, so re-export only
  encodes the appended constraints (see ``Model.to_matrix_form(base=...)``);
* the previous optimal root basis, extended over the new rows/columns by
  :func:`extend_basis` so the next solve re-optimizes with the dual simplex
  instead of a phase-1 cold start;
* the previous optimum, offered as an initial incumbent (branch-and-bound
  validates it against the grown constraint set and ignores it when the
  learned constraints cut it off — which is the common case, since that is
  what LEARNCONS is for).

Why extending the basis is sound: appending a row whose slack is made basic
extends the basis matrix block-triangularly, so the old columns' reduced
costs are unchanged and the new row's dual value is zero — the extended
basis stays *dual* feasible (it is primal infeasible exactly when the new
constraint cuts the old optimum, which is what the dual simplex repairs).
A new structural column entering at a bound has reduced cost equal to its
objective coefficient; our appended columns are cost-:math:`\\geq 0`
binaries entering at their lower bound, which also preserves dual
feasibility. Appended *equality* rows have no slack to make basic, so
:func:`extend_basis` reports the basis unusable and the solve falls back to
a cold start rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from .model import MatrixForm, Model
from .simplex import _AT_LOWER, _AT_UPPER, _BASIC, LPBasis

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .branch_and_bound import MilpOutcome

__all__ = ["WarmStartContext", "extend_basis", "AT_LOWER", "AT_UPPER", "BASIC"]

# Status codes, re-exported for tests that build bases by hand.
AT_LOWER = _AT_LOWER
AT_UPPER = _AT_UPPER
BASIC = _BASIC


def extend_basis(
    basis: LPBasis, old_form: MatrixForm, new_form: MatrixForm
) -> Optional[LPBasis]:
    """Extend ``basis`` (optimal for ``old_form``) to cover ``new_form``.

    New structural columns start nonbasic at their lower bound (upper bound
    when the lower is unbounded), new inequality rows get a basic slack.
    Returns ``None`` when the extension cannot preserve dual feasibility —
    an appended equality row, or a shrunk model — in which case the caller
    should cold-start.
    """
    extra_vars = new_form.num_vars - old_form.num_vars
    extra_rows = new_form.num_constrs - old_form.num_constrs
    if extra_vars < 0 or extra_rows < 0:
        return None
    if len(basis.var_status) != old_form.num_vars:
        return None
    if len(basis.row_status) != old_form.num_constrs:
        return None
    if any(s == "==" for s in new_form.senses[old_form.num_constrs:]):
        return None

    var_status = np.empty(new_form.num_vars, dtype=np.int8)
    var_status[: old_form.num_vars] = basis.var_status
    if extra_vars:
        lb = new_form.lb[old_form.num_vars:]
        var_status[old_form.num_vars:] = np.where(
            np.isfinite(lb), _AT_LOWER, _AT_UPPER
        )
    row_status = np.empty(new_form.num_constrs, dtype=np.int8)
    row_status[: old_form.num_constrs] = basis.row_status
    row_status[old_form.num_constrs:] = _BASIC
    return LPBasis(var_status, row_status)


@dataclass
class WarmStartContext:
    """Mutable carrier of warm-start state across a sequence of solves.

    Create one per model lifetime, pass it as ``warm=`` to
    :func:`repro.ilp.solver.solve` (or ``Model.solve``); each solve refreshes
    the export incrementally, seeds branch-and-bound with the carried basis
    and incumbent, and absorbs the new optimum for the next round.
    """

    form: Optional[MatrixForm] = None
    basis: Optional[LPBasis] = None
    incumbent: Optional[np.ndarray] = None

    def refresh(self, model: Model) -> MatrixForm:
        """Re-export ``model`` reusing the previous rows; adapt the basis."""
        new_form = model.to_matrix_form(base=self.form)
        if self.basis is not None and self.form is not None:
            self.basis = extend_basis(self.basis, self.form, new_form)
        if self.incumbent is not None and len(self.incumbent) < new_form.num_vars:
            # Pad with lower bounds; validation rejects it if infeasible.
            pad = new_form.lb[len(self.incumbent):]
            self.incumbent = np.concatenate(
                [self.incumbent, np.where(np.isfinite(pad), pad, 0.0)]
            )
        self.form = new_form
        return new_form

    def absorb(self, outcome: "MilpOutcome") -> None:
        """Record a finished solve's basis and optimum for the next one."""
        if outcome.root_basis is not None:
            self.basis = outcome.root_basis
        elif outcome.status != "optimal":
            self.basis = None
        if outcome.x is not None:
            self.incumbent = np.asarray(outcome.x, dtype=float).copy()
