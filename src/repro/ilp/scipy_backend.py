"""MILP backend using scipy's bundled HiGHS solver.

The paper solved its ILPs with CPLEX; HiGHS is the closest available
equivalent here (an exact branch-and-cut MILP solver). This backend is used
by default for large instances — e.g. the Table III ILP-AR encodings — while
the from-scratch solver in :mod:`repro.ilp.branch_and_bound` demonstrates
the full pipeline without any external optimizer.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .branch_and_bound import BnBStats, MilpOutcome
from .model import MatrixForm

__all__ = ["solve_with_scipy", "scipy_milp_available"]


def scipy_milp_available() -> bool:
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is a hard dependency here
        return False
    return True


def solve_with_scipy(
    form: MatrixForm,
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
) -> MilpOutcome:
    """Minimize the exported model with ``scipy.optimize.milp`` (HiGHS)."""
    from scipy.optimize import Bounds, LinearConstraint, milp

    lower = np.empty(form.num_constrs)
    upper = np.empty(form.num_constrs)
    for i, sense in enumerate(form.senses):
        if sense == "<=":
            lower[i], upper[i] = -np.inf, form.b[i]
        elif sense == ">=":
            lower[i], upper[i] = form.b[i], np.inf
        else:
            lower[i], upper[i] = form.b[i], form.b[i]

    constraints = (
        LinearConstraint(form.A, lower, upper) if form.num_constrs else None
    )
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = mip_rel_gap
    res = milp(
        c=form.c,
        constraints=constraints,
        integrality=form.integrality.astype(int),
        bounds=Bounds(form.lb, form.ub),
        options=options or None,
    )

    stats = BnBStats()
    if getattr(res, "mip_node_count", None) is not None:
        stats.nodes = int(res.mip_node_count)
    if res.status == 0 and res.x is not None:
        x = np.asarray(res.x, dtype=float)
        x[form.integrality] = np.round(x[form.integrality])
        return MilpOutcome("optimal", float(res.fun), x, stats)
    if res.status == 2:
        return MilpOutcome("infeasible", math.inf, None, stats)
    if res.status == 3:
        return MilpOutcome("unbounded", -math.inf, None, stats)
    if res.status == 1 and res.x is not None:  # iteration/time limit with incumbent
        x = np.asarray(res.x, dtype=float)
        x[form.integrality] = np.round(x[form.integrality])
        return MilpOutcome("limit", float(res.fun), x, stats)
    if res.status == 4:
        # HiGHS reports "infeasible or unbounded" without disambiguating;
        # the LP relaxation's feasibility settles it (an LP-feasible but
        # MILP-unbounded ray stays unbounded after integrality restriction
        # for rational data).
        from scipy.optimize import linprog

        lp = linprog(
            np.zeros_like(form.c),
            A_ub=None,
            b_ub=None,
            A_eq=None,
            b_eq=None,
            bounds=list(zip(form.lb, form.ub)),
            method="highs",
        ) if form.num_constrs == 0 else None
        if lp is None:
            lower_rows = ~np.isinf(lower)
            upper_rows = ~np.isinf(upper)
            a_dense = form.A.toarray() if hasattr(form.A, "toarray") else form.A
            a_ub = np.vstack([a_dense[upper_rows], -a_dense[lower_rows]])
            b_ub = np.concatenate([upper[upper_rows], -lower[lower_rows]])
            lp = linprog(
                np.zeros_like(form.c),
                A_ub=a_ub if len(b_ub) else None,
                b_ub=b_ub if len(b_ub) else None,
                bounds=list(zip(form.lb, form.ub)),
                method="highs",
            )
        if lp.status == 2:
            return MilpOutcome("infeasible", math.inf, None, stats)
        return MilpOutcome("unbounded", -math.inf, None, stats)
    return MilpOutcome("limit", math.inf, None, stats)
