"""Linearization of Boolean operations over 0-1 variables.

The paper's constraint formulations (eqs. 1, 3, 6, 11) freely mix logical
conjunction/disjunction with linear arithmetic and note that these "can be
linearized with standard techniques [Winston]". This module implements those
standard techniques once, so the synthesis encoders stay readable.

All helpers accept *binary-valued* arguments: either binary :class:`Var`
instances or affine expressions guaranteed to evaluate in {0, 1} (e.g.
``1 - x`` for negation). Each helper adds the necessary auxiliary variables
and constraints to the model and returns the variable (or expression)
representing the result.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .expr import LinExpr, Var, as_expr, lin_sum
from .model import Model

__all__ = [
    "or_",
    "and_",
    "not_",
    "implies",
    "iff",
    "at_least",
    "at_most",
    "exactly",
    "count_indicators",
    "BoolArg",
]

BoolArg = Union[Var, LinExpr]


def _check_binaryish(args: Sequence[BoolArg]) -> List[LinExpr]:
    exprs = []
    for arg in args:
        if isinstance(arg, Var):
            if not arg.is_binary:
                raise ValueError(f"logic helper applied to non-binary variable {arg.name!r}")
            exprs.append(as_expr(arg))
        elif isinstance(arg, LinExpr):
            exprs.append(arg)
        else:
            raise TypeError(f"expected a binary variable or expression, got {arg!r}")
    return exprs


def not_(arg: BoolArg) -> LinExpr:
    """Logical negation — purely affine, no auxiliary variable needed."""
    (expr,) = _check_binaryish([arg])
    return 1 - expr


def or_(model: Model, args: Sequence[BoolArg], name: Optional[str] = None) -> Var:
    """Return a binary variable ``z`` constrained to ``z = OR(args)``.

    Linearization: ``z >= a_i`` for each argument and ``z <= sum(a_i)``.
    This is exact for binary-valued arguments.
    """
    exprs = _check_binaryish(args)
    if not exprs:
        raise ValueError("or_ of an empty argument list")
    z = model.add_binary(name)
    for i, expr in enumerate(exprs):
        model.add_constr(z >= expr, tag="logic.or")
    model.add_constr(z <= lin_sum(exprs), tag="logic.or")
    return z


def and_(model: Model, args: Sequence[BoolArg], name: Optional[str] = None) -> Var:
    """Return a binary variable ``z`` constrained to ``z = AND(args)``.

    Linearization: ``z <= a_i`` for each argument and
    ``z >= sum(a_i) - (n - 1)``.
    """
    exprs = _check_binaryish(args)
    if not exprs:
        raise ValueError("and_ of an empty argument list")
    z = model.add_binary(name)
    for expr in exprs:
        model.add_constr(z <= expr, tag="logic.and")
    model.add_constr(z >= lin_sum(exprs) - (len(exprs) - 1), tag="logic.and")
    return z


def implies(model: Model, antecedent: BoolArg, consequent: BoolArg) -> None:
    """Add ``antecedent -> consequent`` for binary-valued operands (``a <= b``)."""
    a, b = _check_binaryish([antecedent, consequent])
    model.add_constr(a <= b, tag="logic.implies")


def iff(model: Model, left: BoolArg, right: BoolArg) -> None:
    """Add ``left <-> right`` (equality of binary-valued expressions)."""
    a, b = _check_binaryish([left, right])
    model.add_constr(a == b, tag="logic.iff")


def at_least(model: Model, args: Sequence[BoolArg], k: int) -> None:
    """Add ``sum(args) >= k`` (the paper's eq. 2 lower-bound form)."""
    exprs = _check_binaryish(args)
    model.add_constr(lin_sum(exprs) >= k, tag="logic.at_least")


def at_most(model: Model, args: Sequence[BoolArg], k: int) -> None:
    """Add ``sum(args) <= k`` (the paper's eq. 2 upper-bound form)."""
    exprs = _check_binaryish(args)
    model.add_constr(lin_sum(exprs) <= k, tag="logic.at_most")


def exactly(model: Model, args: Sequence[BoolArg], k: int) -> None:
    """Add ``sum(args) == k``."""
    exprs = _check_binaryish(args)
    model.add_constr(lin_sum(exprs) == k, tag="logic.exactly")


def count_indicators(
    model: Model,
    args: Sequence[BoolArg],
    name: Optional[str] = None,
    k_max: Optional[int] = None,
) -> List[Var]:
    """Indicator variables for the value of ``sum(args)``.

    Returns binaries ``x[0..k_max]`` with exactly one set, satisfying
    ``sum(args) == sum_k k * x[k]``. This is the standard linearization of
    the paper's implication (11): ``x[k] = 1`` iff exactly ``k`` of the
    arguments are 1. The coupling is exact because the count is an integer
    in ``[0, k_max]`` and the ``x[k]`` form an SOS1 set.
    """
    exprs = _check_binaryish(args)
    if k_max is None:
        k_max = len(exprs)
    if k_max < len(exprs):
        raise ValueError("k_max must be at least the number of arguments")
    prefix = name or "cnt"
    indicators = [model.add_binary(f"{prefix}_{k}") for k in range(k_max + 1)]
    model.add_constr(lin_sum(indicators) == 1, tag="logic.count")
    model.add_constr(
        lin_sum(exprs) == lin_sum(k * x for k, x in enumerate(indicators)),
        tag="logic.count",
    )
    return indicators
