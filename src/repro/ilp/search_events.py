"""B&B search-tree event stream: where the solver's effort goes.

The branch-and-bound loop in :mod:`repro.ilp.branch_and_bound` already
aggregates totals (``BnBStats``, the ``ilp.bnb.*`` counters); this
module streams the *tree* — node opens, branches, prunes, incumbents,
each with bound/depth attributes — to whoever installed a sink:

* the serial batch executor writes ``bnb_event`` records into the batch
  telemetry journal,
* queue workers spool them home to the coordinator,
* the service runner journals them per run, which is what the
  ``/api/runs/<run-id>/events`` tail and ``repro tree`` render.

Sinks are rate-limited per solve by :class:`SearchEventEmitter`: the
first ``keep`` node-level events pass verbatim, then only every
``sample``-th — big trees emit kilobytes, not gigabytes — while
incumbent events always pass (they are rare and are the story), and a
final ``summary`` event carries the true totals including how many
events sampling suppressed.

The sink is a plain callable taking one dict; install it with
:func:`capture_search_events`. With no sink installed the hot loop pays
one module-attribute ``None`` check per solve, nothing per node.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = [
    "SearchEventEmitter",
    "capture_search_events",
    "search_sink",
    "set_search_sink",
    "DEFAULT_KEEP",
    "DEFAULT_SAMPLE",
]

#: Node-level events that pass verbatim before sampling starts.
DEFAULT_KEEP = 128

#: After ``keep``, one node-level event in every ``sample`` passes.
DEFAULT_SAMPLE = 16

#: Event kinds subject to rate limiting (incumbents/summaries never are).
_LIMITED_KINDS = frozenset({"open", "branch", "prune"})

#: The installed sink; ``None`` means the solver emits nothing.
_SINK: Optional[Callable[[Dict[str, Any]], None]] = None

_SOLVE_IDS = itertools.count(1)
_SOLVE_LOCK = threading.Lock()


def search_sink() -> Optional[Callable[[Dict[str, Any]], None]]:
    """The installed search-event sink, or ``None``."""
    return _SINK


def set_search_sink(
    sink: Optional[Callable[[Dict[str, Any]], None]],
) -> Optional[Callable[[Dict[str, Any]], None]]:
    """Install ``sink`` (or ``None`` to disable); returns the previous."""
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous


@contextmanager
def capture_search_events(
    sink: Callable[[Dict[str, Any]], None],
) -> Iterator[None]:
    """Scoped sink installation: solves inside stream their trees."""
    previous = set_search_sink(sink)
    try:
        yield
    finally:
        set_search_sink(previous)


class SearchEventEmitter:
    """Per-solve rate-limited event emitter over the installed sink.

    Constructed by the B&B loop when a sink is installed; each solve
    gets a process-unique ``solve`` id so a run mixing many MILPs (the
    LEARNCONS loop solves one per iteration) stays attributable. A sink
    that raises is dropped for the remainder of the solve — telemetry
    must never abort the search.
    """

    __slots__ = (
        "solve",
        "emitted",
        "suppressed",
        "_sink",
        "_keep",
        "_sample",
        "_node_events",
        "_seq",
    )

    def __init__(
        self,
        sink: Callable[[Dict[str, Any]], None],
        keep: int = DEFAULT_KEEP,
        sample: int = DEFAULT_SAMPLE,
    ) -> None:
        with _SOLVE_LOCK:
            self.solve = next(_SOLVE_IDS)
        self._sink: Optional[Callable[[Dict[str, Any]], None]] = sink
        self._keep = max(0, int(keep))
        self._sample = max(1, int(sample))
        self._node_events = 0
        self._seq = 0
        self.emitted = 0
        self.suppressed = 0

    @classmethod
    def for_active_sink(cls) -> Optional["SearchEventEmitter"]:
        """An emitter over the installed sink, or ``None`` without one."""
        sink = _SINK
        return cls(sink) if sink is not None else None

    def emit(self, kind: str, **attrs: Any) -> None:
        if self._sink is None:
            return
        if kind in _LIMITED_KINDS:
            self._node_events += 1
            past = self._node_events - self._keep
            if past > 0 and past % self._sample != 0:
                self.suppressed += 1
                return
        self._seq += 1
        event = {"kind": kind, "solve": self.solve, "seq": self._seq}
        event.update(attrs)
        try:
            self._sink(event)
            self.emitted += 1
        except Exception:
            self._sink = None

    def close(self, **summary: Any) -> None:
        """Emit the terminal ``summary`` event with true totals."""
        self.emit("summary", suppressed=self.suppressed, **summary)
