"""Mixed-integer linear programming model container.

:class:`Model` plays the role that YALMIP played in the paper's ARCHEX
prototype: it collects decision variables, linear constraints and an
objective, and exports them in a dense matrix form consumed by the solvers
in :mod:`repro.ilp.branch_and_bound` and :mod:`repro.ilp.scipy_backend`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np
from scipy import sparse

from .constraint import Constraint
from .expr import ExprLike, LinExpr, Var, as_expr

__all__ = ["Model", "MatrixForm"]


@dataclass
class MatrixForm:
    """Matrix export of a model.

    Rows are ordered as in the model; ``senses[i]`` is the row's comparison
    against ``b[i]``. The objective is ``c @ x + obj_constant`` to be
    *minimized* (maximization is normalized away at export time).

    ``A`` is a scipy CSR sparse matrix — the eager encodings (ILP-AR,
    ILP-TSE) reach hundreds of thousands of rows where a dense matrix
    would not fit in memory. :meth:`dense_A` densifies on demand for the
    from-scratch simplex, which is only dispatched to small models.
    """

    c: np.ndarray
    obj_constant: float
    A: "sparse.csr_matrix"
    senses: List[str]
    b: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray  # bool per column
    variables: List[Var] = field(default_factory=list)

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constrs(self) -> int:
        return len(self.senses)

    def dense_A(self) -> np.ndarray:
        return self.A.toarray() if sparse.issparse(self.A) else np.asarray(self.A)


class Model:
    """A mixed-integer linear program under construction.

    Examples
    --------
    >>> m = Model("toy")
    >>> x = m.add_binary("x")
    >>> y = m.add_binary("y")
    >>> _ = m.add_constr(x + y >= 1, name="cover")
    >>> m.minimize(2 * x + 3 * y)
    >>> result = m.solve()
    >>> result.objective
    2.0
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Var] = []
        self.constraints: List[Constraint] = []
        self._names: Dict[str, Var] = {}
        self._objective: LinExpr = LinExpr()
        self._sense: str = "min"
        self._auto_var = 0
        self._auto_con = 0

    # -- variables ----------------------------------------------------------

    def add_var(
        self,
        name: Optional[str] = None,
        lb: float = 0.0,
        ub: float = math.inf,
        is_integer: bool = False,
    ) -> Var:
        """Create and register a decision variable."""
        if name is None:
            name = f"_v{self._auto_var}"
            self._auto_var += 1
            while name in self._names:
                name = f"_v{self._auto_var}"
                self._auto_var += 1
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Var(name, lb=lb, ub=ub, is_integer=is_integer, index=len(self.variables))
        self.variables.append(var)
        self._names[name] = var
        return var

    def add_binary(self, name: Optional[str] = None) -> Var:
        """Create a 0-1 decision variable (the paper's edge/indicator vars)."""
        return self.add_var(name, lb=0.0, ub=1.0, is_integer=True)

    def add_integer(self, name: Optional[str] = None, lb: float = 0.0, ub: float = math.inf) -> Var:
        return self.add_var(name, lb=lb, ub=ub, is_integer=True)

    def add_continuous(
        self, name: Optional[str] = None, lb: float = 0.0, ub: float = math.inf
    ) -> Var:
        return self.add_var(name, lb=lb, ub=ub, is_integer=False)

    def var_by_name(self, name: str) -> Var:
        return self._names[name]

    # -- constraints ----------------------------------------------------------

    def add_constr(self, constraint: Constraint, name: str = "", tag: str = "") -> Constraint:
        """Register a constraint built via expression comparison operators."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (did the comparison return a bool?)"
            )
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{self._auto_con}"
            self._auto_con += 1
        if tag:
            constraint.tag = tag
        self.constraints.append(constraint)
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint], tag: str = "") -> List[Constraint]:
        return [self.add_constr(c, tag=tag) for c in constraints]

    # -- objective ----------------------------------------------------------

    def minimize(self, expr: ExprLike) -> None:
        self._objective = as_expr(expr)
        self._sense = "min"

    def maximize(self, expr: ExprLike) -> None:
        self._objective = as_expr(expr)
        self._sense = "max"

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def sense(self) -> str:
        return self._sense

    # -- introspection ----------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constrs(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.is_integer)

    def stats(self) -> Dict[str, int]:
        """Model-size statistics (used by the Table III benchmark)."""
        nnz = sum(len(c.expr) for c in self.constraints)
        return {
            "variables": self.num_vars,
            "integer_variables": self.num_integer_vars,
            "constraints": self.num_constrs,
            "nonzeros": nnz,
        }

    def violated_constraints(
        self, assignment: Mapping[Var, float], tol: float = 1e-6
    ) -> List[Constraint]:
        """Constraints the assignment violates; empty when feasible."""
        return [c for c in self.constraints if not c.is_satisfied(assignment, tol)]

    # -- export ----------------------------------------------------------

    def _reusable_base(self, base: Optional[MatrixForm]) -> bool:
        """True when ``base`` is a prefix export of this model.

        Variables and constraints are append-only, so a previous export
        stays valid for its first ``num_vars`` columns / ``num_constrs``
        rows; identity checks on the boundary variables guard against a
        form exported from a different model.
        """
        if base is None:
            return False
        if base.num_vars > self.num_vars or base.num_constrs > self.num_constrs:
            return False
        if base.num_vars == 0:
            return self.num_vars == 0 or base.num_constrs == 0
        return (
            base.variables[0] is self.variables[0]
            and base.variables[base.num_vars - 1] is self.variables[base.num_vars - 1]
        )

    def to_matrix_form(self, base: Optional[MatrixForm] = None) -> MatrixForm:
        """Export to the matrix form the solvers consume.

        Maximization is converted to minimization by negating the objective;
        :class:`repro.ilp.solver.SolveResult` undoes the sign flip.

        ``base`` — a previous export of *this* model — makes the export
        incremental: rows already encoded there are reused (the CSR block is
        widened to the new column count without copying its arrays) and only
        constraints added since are walked. This is what keeps per-iteration
        SOLVEILP cost proportional to the learned constraints, not the whole
        model. Objective, bounds and integrality are always rebuilt — they
        are O(n) vector fills. An incompatible ``base`` (different model, or
        rows removed) falls back to a full export.
        """
        n = self.num_vars
        c = np.zeros(n)
        for var, coeff in self._objective.terms.items():
            c[var.index] += coeff
        obj_constant = self._objective.constant
        if self._sense == "max":
            c = -c
            obj_constant = -obj_constant

        m = self.num_constrs
        first_row = base.num_constrs if self._reusable_base(base) else 0
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        b_new = np.zeros(m - first_row)
        senses_new: List[str] = []
        for row, con in enumerate(self.constraints[first_row:]):
            for var, coeff in con.expr.terms.items():
                rows.append(row)
                cols.append(var.index)
                data.append(coeff)
            b_new[row] = con.rhs
            senses_new.append(con.sense)
        a_new = sparse.csr_matrix(
            (data, (rows, cols)), shape=(m - first_row, n), dtype=float
        )
        a_new.sum_duplicates()

        if first_row:
            old = base.A
            # Same data/indices/indptr arrays, wider shape: column indices
            # are stable because variables are append-only.
            widened = sparse.csr_matrix(
                (old.data, old.indices, old.indptr), shape=(first_row, n)
            )
            a = sparse.vstack([widened, a_new], format="csr")
            b = np.concatenate([base.b, b_new])
            senses = list(base.senses) + senses_new
        else:
            a = a_new
            b = b_new
            senses = senses_new

        lb = np.array([v.lb for v in self.variables])
        ub = np.array([v.ub for v in self.variables])
        integrality = np.array([v.is_integer for v in self.variables], dtype=bool)
        return MatrixForm(
            c=c,
            obj_constant=obj_constant,
            A=a,
            senses=senses,
            b=b,
            lb=lb,
            ub=ub,
            integrality=integrality,
            variables=list(self.variables),
        )

    # -- solving ----------------------------------------------------------

    def solve(self, backend: str = "auto", **options):
        """Solve the model; see :func:`repro.ilp.solver.solve`."""
        from .solver import solve

        return solve(self, backend=backend, **options)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars}, "
            f"constrs={self.num_constrs}, sense={self._sense})"
        )
