"""Bounded-variable primal simplex for linear programs.

This is the from-scratch LP engine that backs the branch-and-bound MILP
solver in :mod:`repro.ilp.branch_and_bound` (the role CPLEX's LP relaxation
played in the paper's experiments). It implements the revised primal simplex
method with explicit variable bounds and a two-phase start:

* all rows are converted to equalities by appending slack/surplus columns;
* phase 1 minimizes the sum of artificial variables to find a basic
  feasible solution; phase 2 optimizes the real objective;
* nonbasic variables rest at a finite bound; the ratio test supports the
  *bound flip* move required for bounded variables;
* Dantzig pricing with an automatic switch to Bland's rule to guarantee
  termination on degenerate instances.

The implementation is dense (numpy) and refactorizes the basis each
iteration via ``numpy.linalg.solve``; this is O(m^3) per pivot, plenty for
the few-thousand-constraint instances the reproduction solves, and trivially
correct — no basis-update drift to chase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["LPStatus", "LPResult", "solve_lp"]

_TOL = 1e-9
_FEAS_TOL = 1e-7
_BLAND_AFTER = 2000
_MAX_ITER_FACTOR = 200


class LPStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class LPResult:
    status: LPStatus
    objective: float
    x: Optional[np.ndarray]
    iterations: int

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL


# Internal nonbasic status markers.
_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2


def solve_lp(
    c: np.ndarray,
    a: np.ndarray,
    senses: Sequence[str],
    b: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iterations: Optional[int] = None,
) -> LPResult:
    """Minimize ``c @ x`` subject to ``A x (senses) b`` and ``lb <= x <= ub``.

    Parameters mirror :class:`repro.ilp.model.MatrixForm`. Bounds may be
    infinite; rows may mix ``<=``, ``>=`` and ``==``.
    """
    c = np.asarray(c, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)
    m, n = a.shape if a.size else (len(b), len(c))
    if m == 0:
        # Pure bound-constrained minimization.
        x = _bound_only_solution(c, lb, ub)
        if x is None:
            return LPResult(LPStatus.UNBOUNDED, -math.inf, None, 0)
        return LPResult(LPStatus.OPTIMAL, float(c @ x), x, 0)

    # -- convert to equality form with slack columns ------------------------
    slack_rows = [i for i, s in enumerate(senses) if s != "=="]
    n_slack = len(slack_rows)
    a_eq = np.zeros((m, n + n_slack))
    a_eq[:, :n] = a
    lb_full = np.concatenate([lb, np.zeros(n_slack)])
    ub_full = np.concatenate([ub, np.full(n_slack, math.inf)])
    for k, row in enumerate(slack_rows):
        a_eq[row, n + k] = 1.0 if senses[row] == "<=" else -1.0
    c_full = np.concatenate([c, np.zeros(n_slack)])

    solver = _BoundedSimplex(a_eq, b.copy(), lb_full, ub_full, max_iterations)
    status, iterations = solver.solve(c_full)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status, math.nan, None, iterations)
    x_full = solver.solution()
    x = x_full[:n]
    return LPResult(LPStatus.OPTIMAL, float(c @ x), x, iterations)


def _bound_only_solution(
    c: np.ndarray, lb: np.ndarray, ub: np.ndarray
) -> Optional[np.ndarray]:
    x = np.zeros(len(c))
    for j, coeff in enumerate(c):
        if coeff > 0:
            if not math.isfinite(lb[j]):
                return None
            x[j] = lb[j]
        elif coeff < 0:
            if not math.isfinite(ub[j]):
                return None
            x[j] = ub[j]
        else:
            x[j] = lb[j] if math.isfinite(lb[j]) else (ub[j] if math.isfinite(ub[j]) else 0.0)
    return x


class _BoundedSimplex:
    """Two-phase revised simplex over ``A x = b, lb <= x <= ub``."""

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        max_iterations: Optional[int],
    ) -> None:
        self.m, self.n = a.shape
        self.lb = lb
        self.ub = ub
        self.max_iterations = max_iterations or max(
            5000, _MAX_ITER_FACTOR * (self.m + self.n)
        )
        # Start every structural variable at a finite bound (0 for free vars).
        self.xn = np.where(
            np.isfinite(lb), lb, np.where(np.isfinite(ub), ub, 0.0)
        )
        self.status_flags = np.where(
            np.isfinite(lb), _AT_LOWER, np.where(np.isfinite(ub), _AT_UPPER, _AT_LOWER)
        ).astype(np.int8)

        residual = b - a @ self.xn
        # One artificial per row, signed so its value is |residual| >= 0.
        art_cols = np.zeros((self.m, self.m))
        for i in range(self.m):
            art_cols[i, i] = 1.0 if residual[i] >= 0 else -1.0
        self.a = np.hstack([a, art_cols])
        self.b = b
        self.lb = np.concatenate([lb, np.zeros(self.m)])
        self.ub = np.concatenate([ub, np.full(self.m, math.inf)])
        self.xn = np.concatenate([self.xn, np.abs(residual)])
        self.status_flags = np.concatenate(
            [self.status_flags, np.full(self.m, _BASIC, dtype=np.int8)]
        )
        self.basis = list(range(self.n, self.n + self.m))
        self.n_total = self.n + self.m
        self.n_structural = self.n

    # -- main driver ---------------------------------------------------------

    def solve(self, c_structural: np.ndarray):
        iterations = 0
        # Phase 1: minimize sum of artificials.
        c1 = np.zeros(self.n_total)
        c1[self.n_structural :] = 1.0
        status, it1 = self._optimize(c1)
        iterations += it1
        if status is not LPStatus.OPTIMAL and status is not LPStatus.UNBOUNDED:
            return status, iterations
        phase1_obj = float(c1 @ self._values())
        if phase1_obj > _FEAS_TOL * max(1.0, np.abs(self.b).max(initial=1.0)):
            return LPStatus.INFEASIBLE, iterations
        # Pin artificials at zero so they never re-enter.
        self.ub[self.n_structural :] = 0.0
        self._evict_artificials()

        # Phase 2: real objective on structural columns only.
        c2 = np.zeros(self.n_total)
        c2[: self.n_structural] = c_structural
        status, it2 = self._optimize(c2)
        iterations += it2
        return status, iterations

    def solution(self) -> np.ndarray:
        return self._values()[: self.n_structural]

    # -- internals ---------------------------------------------------------

    def _values(self) -> np.ndarray:
        values = self.xn.copy()
        basis_matrix = self.a[:, self.basis]
        rhs = self.b - self.a @ np.where(self.status_flags == _BASIC, 0.0, self.xn)
        xb = np.linalg.solve(basis_matrix, rhs)
        for pos, var in enumerate(self.basis):
            values[var] = xb[pos]
        return values

    def _evict_artificials(self) -> None:
        """Pivot basic artificials (at value ~0) out of the basis when possible."""
        for pos in range(self.m):
            var = self.basis[pos]
            if var < self.n_structural:
                continue
            basis_matrix = self.a[:, self.basis]
            try:
                binv_row = np.linalg.solve(basis_matrix.T, _unit(self.m, pos))
            except np.linalg.LinAlgError:
                continue
            # Find a structural nonbasic column with a nonzero pivot element.
            for j in range(self.n_structural):
                if self.status_flags[j] == _BASIC:
                    continue
                pivot = binv_row @ self.a[:, j]
                if abs(pivot) > 1e-7:
                    self._pivot(entering=j, leaving_pos=pos, t=0.0, entering_to=None)
                    break

    def _optimize(self, c: np.ndarray):
        from scipy.linalg import lu_factor, lu_solve

        iteration = 0
        while iteration < self.max_iterations:
            basis_matrix = self.a[:, self.basis]
            nonbasic_contrib = np.where(self.status_flags == _BASIC, 0.0, self.xn)
            rhs = self.b - self.a @ nonbasic_contrib
            try:
                # One LU factorization serves all three solves this iteration.
                lu = lu_factor(basis_matrix)
                xb = lu_solve(lu, rhs)
                y = lu_solve(lu, c[self.basis], trans=1)
            except (np.linalg.LinAlgError, ValueError):
                return LPStatus.INFEASIBLE, iteration
            reduced = c - y @ self.a

            use_bland = iteration > _BLAND_AFTER
            entering = self._price(reduced, use_bland)
            if entering is None:
                return LPStatus.OPTIMAL, iteration

            if not math.isfinite(self.lb[entering]) and not math.isfinite(
                self.ub[entering]
            ):
                # Free nonbasic variable: move against its reduced cost.
                direction = -1.0 if reduced[entering] > 0 else 1.0
            else:
                direction = 1.0 if self.status_flags[entering] == _AT_LOWER else -1.0
            col = lu_solve(lu, self.a[:, entering]) * direction

            # Ratio test: basic variables hitting bounds, or the entering
            # variable flipping to its opposite bound.
            limit = self.ub[entering] - self.lb[entering]
            best_t = limit
            leaving_pos = None
            leaving_to = None
            for pos in range(self.m):
                if col[pos] > _TOL:
                    bound = self.lb[self.basis[pos]]
                    if not math.isfinite(bound):
                        continue
                    t = max(0.0, (xb[pos] - bound) / col[pos])
                    to = _AT_LOWER
                elif col[pos] < -_TOL:
                    bound = self.ub[self.basis[pos]]
                    if not math.isfinite(bound):
                        continue
                    t = max(0.0, (bound - xb[pos]) / (-col[pos]))
                    to = _AT_UPPER
                else:
                    continue
                if t < best_t - _TOL:
                    best_t, leaving_pos, leaving_to = t, pos, to
                elif abs(t - best_t) <= _TOL and leaving_pos is not None:
                    # Tie-break: Bland picks the smallest variable index to
                    # guarantee termination; otherwise keep the first hit.
                    if use_bland and self.basis[pos] < self.basis[leaving_pos]:
                        best_t, leaving_pos, leaving_to = t, pos, to
                elif leaving_pos is None and t <= best_t + _TOL:
                    best_t, leaving_pos, leaving_to = t, pos, to

            if leaving_pos is None and not math.isfinite(best_t):
                return LPStatus.UNBOUNDED, iteration

            best_t = max(best_t, 0.0)
            if leaving_pos is None:
                # Bound flip: entering variable jumps to its other bound.
                self.status_flags[entering] = (
                    _AT_UPPER if self.status_flags[entering] == _AT_LOWER else _AT_LOWER
                )
                self.xn[entering] = (
                    self.ub[entering]
                    if self.status_flags[entering] == _AT_UPPER
                    else self.lb[entering]
                )
            else:
                self._pivot(entering, leaving_pos, best_t * direction, leaving_to)
            iteration += 1
        return LPStatus.ITERATION_LIMIT, iteration

    def _price(self, reduced: np.ndarray, use_bland: bool) -> Optional[int]:
        """Pick the entering variable (Dantzig, or Bland when anti-cycling)."""
        best = None
        best_score = _TOL
        for j in range(self.n_total):
            flag = self.status_flags[j]
            if flag == _BASIC:
                continue
            if self.lb[j] == self.ub[j]:
                continue  # fixed variable can never improve
            score = 0.0
            free = not math.isfinite(self.lb[j]) and not math.isfinite(self.ub[j])
            if free and abs(reduced[j]) > _TOL:
                # A free nonbasic variable improves in either direction.
                score = abs(reduced[j])
            elif flag == _AT_LOWER and reduced[j] < -_TOL:
                score = -reduced[j]
            elif flag == _AT_UPPER and reduced[j] > _TOL:
                score = reduced[j]
            if score > _TOL:
                if use_bland:
                    return j
                if score > best_score:
                    best_score = score
                    best = j
        return best

    def _pivot(
        self,
        entering: int,
        leaving_pos: int,
        t: float,
        entering_to: Optional[int],
    ) -> None:
        """Swap ``entering`` into the basis at row ``leaving_pos``.

        ``t`` is the signed step of the entering variable from its resting
        bound; ``entering_to`` is the bound status the *leaving* variable
        lands on (None when evicting a zero-valued artificial in place).
        """
        leaving = self.basis[leaving_pos]
        start = self.xn[entering]
        self.basis[leaving_pos] = entering
        self.status_flags[entering] = _BASIC
        self.xn[entering] = start + t
        if entering_to is None:
            # Artificial eviction at degenerate step: leaving var rests at 0.
            self.status_flags[leaving] = _AT_LOWER
            self.xn[leaving] = self.lb[leaving] if math.isfinite(self.lb[leaving]) else 0.0
        else:
            self.status_flags[leaving] = entering_to
            self.xn[leaving] = (
                self.lb[leaving] if entering_to == _AT_LOWER else self.ub[leaving]
            )


def _unit(size: int, index: int) -> np.ndarray:
    vec = np.zeros(size)
    vec[index] = 1.0
    return vec
