"""Bounded-variable revised simplex with a factorized, reusable basis.

This is the from-scratch LP engine that backs the branch-and-bound MILP
solver in :mod:`repro.ilp.branch_and_bound` (the role CPLEX's LP relaxation
played in the paper's experiments). It implements the revised primal simplex
method with explicit variable bounds, a two-phase cold start, and — the
pieces that make CEGIS-style re-solving cheap — a *warm* start path:

* the basis is LU-factorized once (``scipy.linalg.lu_factor`` when scipy is
  importable, a pure-numpy partial-pivot LU otherwise) and maintained across
  pivots with product-form *eta* updates; every solve of ``B x = b`` (FTRAN)
  or ``B^T y = c`` (BTRAN) runs against the factorization, so a pivot costs
  O(m^2) instead of the O(m^3) refactorize-per-pivot of the original
  implementation. The factorization is rebuilt every
  ``_REFACTOR_EVERY`` pivots to bound eta-file growth and drift;
* :func:`solve_lp` accepts a starting :class:`LPBasis` and re-optimizes from
  it with a bounded-variable **dual simplex** — the textbook move after
  tightening bounds (branch-and-bound children) or appending rows (learned
  interconnection constraints), both of which leave the parent basis dual
  feasible. Warm solves skip phase 1 entirely;
* nonbasic variables rest at a finite bound; the ratio test supports the
  *bound flip* move required for bounded variables;
* Dantzig pricing with an automatic switch to Bland's rule — scaled with
  problem size, see :func:`bland_cutover` — to guarantee termination on
  degenerate instances.

Every fallback is graceful: a stale/singular/dual-infeasible warm basis
degrades to the cold two-phase start, never to a wrong answer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs

try:  # pragma: no cover - scipy is a declared dependency, but stay runnable
    from scipy.linalg import lu_factor as _sp_lu_factor
    from scipy.linalg import lu_solve as _sp_lu_solve

    _HAVE_SCIPY_LU = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY_LU = False

__all__ = ["LPStatus", "LPResult", "LPBasis", "NO_SLACK", "solve_lp", "bland_cutover"]

_TOL = 1e-9
_FEAS_TOL = 1e-7
_PIVOT_TOL = 1e-8
_SINGULAR_TOL = 1e-11
_BLAND_BASE = 2000
_BLAND_FACTOR = 10
_MAX_ITER_FACTOR = 200
_REFACTOR_EVERY = 64

#: Sentinel in :attr:`LPBasis.row_status` for rows without a slack column
#: (equality rows) or rows whose basis information is unusable.
NO_SLACK = -1


def bland_cutover(m: int, n: int) -> int:
    """Iteration count after which pricing switches to Bland's rule.

    The cutover scales with problem size: an absolute threshold flips large
    models into (slow, but cycle-proof) Bland pricing almost immediately,
    long before degeneracy is a realistic risk.
    """
    return max(_BLAND_BASE, _BLAND_FACTOR * (m + n))


class LPStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


# Internal nonbasic status markers (also the LPBasis encoding).
_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2


@dataclass
class LPBasis:
    """Layout-independent snapshot of an optimal simplex basis.

    ``var_status[j]`` is the status of structural column ``j`` and
    ``row_status[i]`` the status of row ``i``'s slack column
    (:data:`NO_SLACK` for equality rows). Stored per-variable rather than as
    column indices so it survives the model growing new columns and rows:
    see :func:`repro.ilp.incremental.extend_basis`.
    """

    var_status: np.ndarray
    row_status: np.ndarray

    def copy(self) -> "LPBasis":
        return LPBasis(self.var_status.copy(), self.row_status.copy())


@dataclass
class LPResult:
    status: LPStatus
    objective: float
    x: Optional[np.ndarray]
    iterations: int
    basis: Optional[LPBasis] = None
    #: True when the solve started from an installed basis (phase 1 skipped).
    warm_started: bool = False
    dual_pivots: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL


def solve_lp(
    c: np.ndarray,
    a: np.ndarray,
    senses: Sequence[str],
    b: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iterations: Optional[int] = None,
    warm_basis: Optional[LPBasis] = None,
    want_basis: bool = False,
) -> LPResult:
    """Minimize ``c @ x`` subject to ``A x (senses) b`` and ``lb <= x <= ub``.

    Parameters mirror :class:`repro.ilp.model.MatrixForm`. Bounds may be
    infinite; rows may mix ``<=``, ``>=`` and ``==``.

    ``warm_basis`` (from a previous :class:`LPResult` with ``want_basis``)
    re-optimizes via dual simplex instead of the two-phase cold start; it is
    safe to pass a basis recorded under different bounds — the standard
    branch-and-bound warm start — or one extended over newly appended
    rows/columns. An unusable basis silently falls back to the cold start.
    """
    c = np.asarray(c, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)
    m, n = a.shape if a.size else (len(b), len(c))
    if m == 0:
        # Pure bound-constrained minimization.
        x = _bound_only_solution(c, lb, ub)
        if x is None:
            return LPResult(LPStatus.UNBOUNDED, -math.inf, None, 0)
        return LPResult(LPStatus.OPTIMAL, float(c @ x), x, 0)

    # -- convert to equality form with slack columns ------------------------
    slack_rows = [i for i, s in enumerate(senses) if s != "=="]
    n_slack = len(slack_rows)
    a_eq = np.zeros((m, n + n_slack))
    a_eq[:, :n] = a
    lb_full = np.concatenate([lb, np.zeros(n_slack)])
    ub_full = np.concatenate([ub, np.full(n_slack, math.inf)])
    for k, row in enumerate(slack_rows):
        a_eq[row, n + k] = 1.0 if senses[row] == "<=" else -1.0
    c_full = np.concatenate([c, np.zeros(n_slack)])

    warm_flags = (
        _flags_from_basis(warm_basis, n, m, slack_rows)
        if warm_basis is not None
        else None
    )

    solver = _BoundedSimplex(a_eq, b.copy(), lb_full, ub_full, max_iterations)
    status, iterations = solver.solve(c_full, warm_flags=warm_flags)
    _record_lp_observations(solver)
    if status is not LPStatus.OPTIMAL:
        return LPResult(
            status, math.nan, None, iterations,
            warm_started=solver.warm_started, dual_pivots=solver.dual_pivots,
        )
    x_full = solver.solution()
    x = x_full[:n]
    basis = solver.export_basis(n, m, slack_rows) if want_basis else None
    return LPResult(
        LPStatus.OPTIMAL,
        float(c @ x),
        x,
        iterations,
        basis=basis,
        warm_started=solver.warm_started,
        dual_pivots=solver.dual_pivots,
    )


def _record_lp_observations(solver: "_BoundedSimplex") -> None:
    if not obs.enabled():
        return
    obs.counter("ilp.simplex.solves").inc()
    if solver.warm_started:
        obs.counter("ilp.simplex.warm_starts").inc()
        obs.counter("ilp.simplex.phase1_skips").inc()
    else:
        obs.counter("ilp.simplex.cold_starts").inc()
    obs.counter("ilp.simplex.refactorizations").inc(solver.refactorizations)
    obs.counter("ilp.simplex.dual_pivots").inc(solver.dual_pivots)
    eta_len = solver.max_eta_len
    if solver.factors is not None:
        eta_len = max(eta_len, solver.factors.eta_len)
    obs.histogram("ilp.simplex.eta_len").observe(eta_len)


def _flags_from_basis(
    basis: LPBasis, n: int, m: int, slack_rows: List[int]
) -> Optional[np.ndarray]:
    """Expand an :class:`LPBasis` into per-column flags, or None if stale."""
    if len(basis.var_status) != n or len(basis.row_status) != m:
        return None
    flags = np.empty(n + len(slack_rows), dtype=np.int8)
    flags[:n] = basis.var_status
    for k, row in enumerate(slack_rows):
        status = basis.row_status[row]
        if status == NO_SLACK:
            return None  # basis predates this row and was not extended
        flags[n + k] = status
    # Equality rows carry no slack; any non-sentinel status there is ignored.
    return flags


def _bound_only_solution(
    c: np.ndarray, lb: np.ndarray, ub: np.ndarray
) -> Optional[np.ndarray]:
    x = np.zeros(len(c))
    for j, coeff in enumerate(c):
        if coeff > 0:
            if not math.isfinite(lb[j]):
                return None
            x[j] = lb[j]
        elif coeff < 0:
            if not math.isfinite(ub[j]):
                return None
            x[j] = ub[j]
        else:
            x[j] = lb[j] if math.isfinite(lb[j]) else (ub[j] if math.isfinite(ub[j]) else 0.0)
    return x


# -- LU kernels (scipy when available, pure numpy otherwise) -----------------


def _np_lu_factor(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Partial-pivot LU compatible with :func:`_np_lu_solve` (getrf layout)."""
    lu = a.copy()
    m = lu.shape[0]
    piv = np.arange(m)
    for k in range(m):
        p = k + int(np.argmax(np.abs(lu[k:, k])))
        piv[k] = p
        if p != k:
            lu[[k, p]] = lu[[p, k]]
        pivot = lu[k, k]
        if pivot != 0.0:
            lu[k + 1 :, k] /= pivot
            lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
    return lu, piv


def _np_lu_solve(
    lu_piv: Tuple[np.ndarray, np.ndarray], b: np.ndarray, trans: int = 0
) -> np.ndarray:
    lu, piv = lu_piv
    m = lu.shape[0]
    x = np.asarray(b, dtype=float).copy()
    if trans == 0:
        for k in range(m):  # apply row swaps: P b
            p = piv[k]
            if p != k:
                x[k], x[p] = x[p], x[k]
        for k in range(1, m):  # L y = P b (unit diagonal)
            x[k] -= lu[k, :k] @ x[:k]
        for k in range(m - 1, -1, -1):  # U x = y
            x[k] = (x[k] - lu[k, k + 1 :] @ x[k + 1 :]) / lu[k, k]
    else:
        for k in range(m):  # U^T y = b
            x[k] = (x[k] - lu[:k, k] @ x[:k]) / lu[k, k]
        for k in range(m - 1, -1, -1):  # L^T z = y
            x[k] -= lu[k + 1 :, k] @ x[k + 1 :]
        for k in range(m - 1, -1, -1):  # P^T x = z
            p = piv[k]
            if p != k:
                x[k], x[p] = x[p], x[k]
    return x


class _SingularBasis(Exception):
    pass


class _BasisFactors:
    """LU factors of the basis matrix plus a product-form eta file.

    After a pivot replacing basic position ``pos`` with a column whose FTRAN
    image is ``alpha`` (= B^-1 a_entering), the inverse is updated as
    ``B_new^-1 = E^-1 B_old^-1`` where ``E^-1`` is the identity with column
    ``pos`` replaced by the eta vector. FTRAN applies the LU solve then the
    etas oldest-first; BTRAN applies the transposed etas newest-first then
    the LU back-solve.
    """

    def __init__(self, basis_matrix: np.ndarray) -> None:
        self.m = basis_matrix.shape[0]
        if _HAVE_SCIPY_LU:
            self._lu = _sp_lu_factor(basis_matrix, check_finite=False)
            diag = np.abs(np.diag(self._lu[0]))
        else:
            self._lu = _np_lu_factor(basis_matrix)
            diag = np.abs(np.diag(self._lu[0]))
        scale = diag.max(initial=0.0)
        if scale == 0.0 or diag.min() < _SINGULAR_TOL * max(1.0, scale):
            raise _SingularBasis
        self.etas: List[Tuple[int, np.ndarray]] = []

    def _lu_solve(self, rhs: np.ndarray, trans: int) -> np.ndarray:
        if _HAVE_SCIPY_LU:
            return _sp_lu_solve(self._lu, rhs, trans=trans, check_finite=False)
        return _np_lu_solve(self._lu, rhs, trans=trans)

    @property
    def eta_len(self) -> int:
        return len(self.etas)

    @property
    def stale(self) -> bool:
        return len(self.etas) >= _REFACTOR_EVERY

    def ftran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``B x = rhs``."""
        x = self._lu_solve(rhs, trans=0)
        for pos, eta in self.etas:
            t = x[pos]
            if t != 0.0:
                x += eta * t
                x[pos] = eta[pos] * t
        return x

    def btran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``B^T y = rhs``."""
        y = np.asarray(rhs, dtype=float).copy()
        for pos, eta in reversed(self.etas):
            y[pos] = eta @ y
        return self._lu_solve(y, trans=1)

    def update(self, alpha: np.ndarray, pos: int) -> None:
        """Record the pivot replacing basic position ``pos``.

        ``alpha`` is the FTRAN image of the entering column against the
        *current* factors. Raises :class:`_SingularBasis` on a pivot element
        too small to divide by — the caller refactorizes.
        """
        pivot = alpha[pos]
        if abs(pivot) < _PIVOT_TOL:
            raise _SingularBasis
        eta = -alpha / pivot
        eta[pos] = 1.0 / pivot
        self.etas.append((pos, eta))


class _BoundedSimplex:
    """Two-phase revised simplex over ``A x = b, lb <= x <= ub``.

    The tableau columns are laid out as ``[structural+slack | artificial]``;
    the artificial block only participates in cold starts and is pinned at
    zero afterwards (and from the beginning on warm starts).
    """

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        max_iterations: Optional[int],
    ) -> None:
        self.m, self.n = a.shape
        self.max_iterations = max_iterations or max(
            5000, _MAX_ITER_FACTOR * (self.m + self.n)
        )
        # Start every structural variable at a finite bound (0 for free vars).
        xn = np.where(np.isfinite(lb), lb, np.where(np.isfinite(ub), ub, 0.0))
        flags = np.where(
            np.isfinite(lb), _AT_LOWER, np.where(np.isfinite(ub), _AT_UPPER, _AT_LOWER)
        ).astype(np.int8)

        residual = b - a @ xn
        # One artificial per row, signed so its value is |residual| >= 0.
        art_cols = np.zeros((self.m, self.m))
        for i in range(self.m):
            art_cols[i, i] = 1.0 if residual[i] >= 0 else -1.0
        self.a = np.hstack([a, art_cols])
        self.b = b
        self.lb = np.concatenate([lb, np.zeros(self.m)])
        self.ub = np.concatenate([ub, np.full(self.m, math.inf)])
        self.xn = np.concatenate([xn, np.abs(residual)])
        self.status_flags = np.concatenate(
            [flags, np.full(self.m, _BASIC, dtype=np.int8)]
        )
        self.basis: List[int] = list(range(self.n, self.n + self.m))
        self.n_total = self.n + self.m
        self.n_structural = self.n

        self.factors: Optional[_BasisFactors] = None
        self.xb: Optional[np.ndarray] = None
        self.warm_started = False
        self.refactorizations = 0
        self.dual_pivots = 0
        self.max_eta_len = 0
        self._bland_after = bland_cutover(self.m, self.n)

    # -- main driver ---------------------------------------------------------

    def solve(self, c: np.ndarray, warm_flags: Optional[np.ndarray] = None):
        iterations = 0
        if warm_flags is not None and self._install(warm_flags):
            self.warm_started = True
            outcome = self._warm_solve(c)
            if outcome is not None:
                return outcome
            # Warm start went nowhere (stale numerics); restart cold.
            self.warm_started = False
            self.dual_pivots = 0
            self._reset_cold()

        # Phase 1: minimize sum of artificials.
        c1 = np.zeros(self.n_total)
        c1[self.n_structural :] = 1.0
        status, it1 = self._primal(c1)
        iterations += it1
        if status is not LPStatus.OPTIMAL and status is not LPStatus.UNBOUNDED:
            return status, iterations
        phase1_obj = float(c1 @ self._values())
        if phase1_obj > _FEAS_TOL * max(1.0, np.abs(self.b).max(initial=1.0)):
            return LPStatus.INFEASIBLE, iterations
        # Pin artificials at zero so they never re-enter.
        self.ub[self.n_structural :] = 0.0
        self._evict_artificials()

        # Phase 2: real objective on structural columns only.
        status, it2 = self._primal(self._full_cost(c))
        return status, iterations + it2

    def solution(self) -> np.ndarray:
        return self._values()[: self.n_structural]

    def export_basis(self, n: int, m: int, slack_rows: List[int]) -> Optional[LPBasis]:
        """Snapshot the current basis, or None if an artificial is basic."""
        flags = self.status_flags
        if np.any(flags[self.n_structural :] == _BASIC):
            return None  # degenerate leftover: not a clean structural basis
        var_status = flags[:n].astype(np.int8).copy()
        row_status = np.full(m, NO_SLACK, dtype=np.int8)
        for k, row in enumerate(slack_rows):
            row_status[row] = flags[n + k]
        return LPBasis(var_status, row_status)

    # -- warm start ----------------------------------------------------------

    def _install(self, flags: np.ndarray) -> bool:
        """Adopt an external basis; True on success (factors + xb ready)."""
        if len(flags) != self.n_structural:
            return False
        full = np.concatenate(
            [flags.astype(np.int8), np.full(self.m, _AT_LOWER, dtype=np.int8)]
        )
        basis = [int(j) for j in np.flatnonzero(full == _BASIC)]
        if len(basis) != self.m:
            return False
        # Artificials never participate in a warm solve.
        self.ub[self.n_structural :] = 0.0
        # Normalize nonbasic statuses against the *current* bounds (they may
        # have changed since the basis was recorded: branching tightens them).
        lb, ub = self.lb, self.ub
        nonbasic = full != _BASIC
        at_upper = nonbasic & (full == _AT_UPPER) & ~np.isfinite(ub)
        full[at_upper] = _AT_LOWER
        at_lower = nonbasic & (full == _AT_LOWER) & ~np.isfinite(lb)
        flip = at_lower & np.isfinite(ub)
        full[flip] = _AT_UPPER
        xn = np.where(full == _AT_UPPER, ub, np.where(np.isfinite(lb), lb, 0.0))
        try:
            factors = _BasisFactors(self.a[:, basis])
        except _SingularBasis:
            return False
        self.refactorizations += 1
        self.status_flags = full
        self.basis = basis
        self.xn = xn
        self.factors = factors
        self._recompute_xb()
        return True

    def _reset_cold(self) -> None:
        """Restore the artificial starting basis after a failed warm start."""
        lb, ub = self.lb[: self.n], self.ub[: self.n]
        xn = np.where(np.isfinite(lb), lb, np.where(np.isfinite(ub), ub, 0.0))
        flags = np.where(
            np.isfinite(lb), _AT_LOWER, np.where(np.isfinite(ub), _AT_UPPER, _AT_LOWER)
        ).astype(np.int8)
        # The artificial column signs from __init__ match this residual
        # (same starting point), so only their bounds need restoring.
        residual = self.b - self.a[:, : self.n] @ xn
        self.ub[self.n_structural :] = math.inf
        self.xn = np.concatenate([xn, np.abs(residual)])
        self.status_flags = np.concatenate(
            [flags, np.full(self.m, _BASIC, dtype=np.int8)]
        )
        self.basis = list(range(self.n, self.n + self.m))
        self.factors = None
        self.xb = None

    def _warm_solve(self, c: np.ndarray):
        """Dual (or primal phase-2) re-optimization from the installed basis.

        Returns ``(status, iterations)``, or None to request a cold restart.
        """
        c_full = self._full_cost(c)
        reduced = self._reduced_costs(c_full)
        if self._dual_feasible(reduced):
            status, its = self._dual(c_full)
            if status is LPStatus.OPTIMAL:
                # Polish with primal phase 2 (usually 0 iterations): bound
                # flips during the dual pass can leave tiny residuals.
                status2, its2 = self._primal(c_full)
                return status2, its + its2
            if status is LPStatus.INFEASIBLE:
                return LPStatus.INFEASIBLE, its
            return None  # iteration cap / numerics: cold restart
        if self._primal_feasible():
            # Basis is primal feasible but not dual feasible (e.g. the
            # objective changed): plain phase 2, still no phase 1.
            return self._primal(c_full)
        return None

    def _full_cost(self, c: np.ndarray) -> np.ndarray:
        if len(c) == self.n_total:
            return c
        full = np.zeros(self.n_total)
        full[: len(c)] = c
        return full

    # -- factorization-backed state ------------------------------------------

    def _refactorize(self) -> None:
        self.factors = _BasisFactors(self.a[:, self.basis])
        self.refactorizations += 1

    def _ensure_factors(self) -> None:
        if self.factors is None or self.factors.stale:
            if self.factors is not None:
                self.max_eta_len = max(self.max_eta_len, self.factors.eta_len)
            self._refactorize()
            self._recompute_xb()

    def _recompute_xb(self) -> None:
        nonbasic_contrib = np.where(self.status_flags == _BASIC, 0.0, self.xn)
        rhs = self.b - self.a @ nonbasic_contrib
        self.xb = self.factors.ftran(rhs)

    def _values(self) -> np.ndarray:
        values = self.xn.copy()
        if self.xb is None:
            self._ensure_factors()
        values[self.basis] = self.xb
        return values

    def _reduced_costs(self, c: np.ndarray) -> np.ndarray:
        y = self.factors.btran(c[self.basis])
        return c - y @ self.a

    def _dual_feasible(self, reduced: np.ndarray, tol: float = 1e-7) -> bool:
        flags = self.status_flags
        lb, ub = self.lb, self.ub
        movable = (flags != _BASIC) & (lb != ub)
        free = movable & ~np.isfinite(lb) & ~np.isfinite(ub)
        if np.any(np.abs(reduced[free]) > tol):
            return False
        low = movable & (flags == _AT_LOWER) & ~free
        if np.any(reduced[low] < -tol):
            return False
        up = movable & (flags == _AT_UPPER)
        return not np.any(reduced[up] > tol)

    def _primal_feasible(self, tol: float = _FEAS_TOL) -> bool:
        basis = self.basis
        lo = self.lb[basis]
        hi = self.ub[basis]
        return bool(
            np.all(self.xb >= lo - tol) and np.all(self.xb <= hi + tol)
        )

    def _evict_artificials(self) -> None:
        """Pivot basic artificials (at value ~0) out of the basis when possible."""
        changed = False
        for pos in range(self.m):
            var = self.basis[pos]
            if var < self.n_structural:
                continue
            basis_matrix = self.a[:, self.basis]
            try:
                binv_row = np.linalg.solve(basis_matrix.T, _unit(self.m, pos))
            except np.linalg.LinAlgError:
                continue
            # Find a structural nonbasic column with a nonzero pivot element.
            for j in range(self.n_structural):
                if self.status_flags[j] == _BASIC:
                    continue
                pivot = binv_row @ self.a[:, j]
                if abs(pivot) > 1e-7:
                    self._pivot(entering=j, leaving_pos=pos, t=0.0, entering_to=None)
                    changed = True
                    break
        if changed:
            self.factors = None
            self.xb = None

    # -- primal simplex ------------------------------------------------------

    def _primal(self, c: np.ndarray):
        iteration = 0
        while iteration < self.max_iterations:
            try:
                self._ensure_factors()
                reduced = self._reduced_costs(c)
            except _SingularBasis:
                return LPStatus.INFEASIBLE, iteration

            use_bland = iteration > self._bland_after
            entering = self._price(reduced, use_bland)
            if entering is None:
                return LPStatus.OPTIMAL, iteration

            if not math.isfinite(self.lb[entering]) and not math.isfinite(
                self.ub[entering]
            ):
                # Free nonbasic variable: move against its reduced cost.
                direction = -1.0 if reduced[entering] > 0 else 1.0
            else:
                direction = 1.0 if self.status_flags[entering] == _AT_LOWER else -1.0
            col = self.factors.ftran(self.a[:, entering]) * direction

            best_t, leaving_pos, leaving_to = self._ratio_test(
                entering, col, use_bland
            )
            if leaving_pos is None and not math.isfinite(best_t):
                return LPStatus.UNBOUNDED, iteration

            best_t = max(best_t, 0.0)
            if leaving_pos is None:
                # Bound flip: entering variable jumps to its other bound.
                self.status_flags[entering] = (
                    _AT_UPPER if self.status_flags[entering] == _AT_LOWER else _AT_LOWER
                )
                self.xn[entering] = (
                    self.ub[entering]
                    if self.status_flags[entering] == _AT_UPPER
                    else self.lb[entering]
                )
                self.xb -= best_t * col
            else:
                entering_value = self.xn[entering] + best_t * direction
                self.xb -= best_t * col
                self.xb[leaving_pos] = entering_value
                try:
                    self.factors.update(col * direction, leaving_pos)
                except _SingularBasis:
                    self.factors = None  # refactorize next round
                self._pivot(entering, leaving_pos, best_t * direction, leaving_to)
            iteration += 1
        return LPStatus.ITERATION_LIMIT, iteration

    def _ratio_test(self, entering: int, col: np.ndarray, use_bland: bool):
        """Max step for the entering variable; vectorized over basic rows."""
        basis = np.asarray(self.basis)
        xb = self.xb
        t = np.full(self.m, math.inf)
        to = np.full(self.m, _AT_LOWER, dtype=np.int8)

        pos_rows = col > _TOL
        if np.any(pos_rows):
            bound = self.lb[basis[pos_rows]]
            ok = np.isfinite(bound)
            idx = np.flatnonzero(pos_rows)[ok]
            t[idx] = np.maximum(0.0, (xb[idx] - bound[ok]) / col[idx])
        neg_rows = col < -_TOL
        if np.any(neg_rows):
            bound = self.ub[basis[neg_rows]]
            ok = np.isfinite(bound)
            idx = np.flatnonzero(neg_rows)[ok]
            t[idx] = np.maximum(0.0, (bound[ok] - xb[idx]) / (-col[idx]))
            to[idx] = _AT_UPPER

        limit = self.ub[entering] - self.lb[entering]
        row_min = t.min(initial=math.inf)
        if row_min >= limit:
            # Bound flip (or unbounded when the limit is infinite too).
            return limit, None, None
        ties = np.flatnonzero(t <= row_min + _TOL)
        if use_bland:
            # Bland: smallest leaving variable index for termination.
            pos = int(ties[np.argmin(basis[ties])])
        else:
            # Stability: largest pivot magnitude among the tied rows.
            pos = int(ties[np.argmax(np.abs(col[ties]))])
        return float(t[pos]), pos, int(to[pos])

    def _price(self, reduced: np.ndarray, use_bland: bool) -> Optional[int]:
        """Pick the entering variable (Dantzig, or Bland when anti-cycling)."""
        flags = self.status_flags
        lb, ub = self.lb, self.ub
        movable = (flags != _BASIC) & (lb != ub)
        free = movable & ~np.isfinite(lb) & ~np.isfinite(ub)
        score = np.zeros(self.n_total)
        if np.any(free):
            score[free] = np.abs(reduced[free])
        low = movable & (flags == _AT_LOWER) & ~free
        score[low] = -reduced[low]
        up = movable & (flags == _AT_UPPER)
        score[up] = reduced[up]
        candidates = score > _TOL
        if not np.any(candidates):
            return None
        if use_bland:
            return int(np.argmax(candidates))  # first candidate index
        return int(np.argmax(score))

    # -- dual simplex --------------------------------------------------------

    def _dual(self, c: np.ndarray):
        """Bounded-variable dual simplex from a dual-feasible basis.

        Pivots until the basics are back inside their bounds (OPTIMAL), no
        entering column exists (primal INFEASIBLE), or the iteration cap
        trips (caller falls back to a cold start).
        """
        iteration = 0
        while iteration < self.max_iterations:
            try:
                self._ensure_factors()
            except _SingularBasis:
                return LPStatus.ITERATION_LIMIT, iteration
            basis = np.asarray(self.basis)
            lo = self.lb[basis]
            hi = self.ub[basis]
            below = np.where(np.isfinite(lo), lo - self.xb, -math.inf)
            above = np.where(np.isfinite(hi), self.xb - hi, -math.inf)
            viol = np.maximum(below, above)
            r = int(np.argmax(viol))
            if viol[r] <= _FEAS_TOL:
                return LPStatus.OPTIMAL, iteration
            to_lower = below[r] >= above[r]

            reduced = self._reduced_costs(c)
            binv_row = self.factors.btran(_unit(self.m, r))
            alpha = binv_row @ self.a

            entering = self._dual_ratio_test(reduced, alpha, to_lower)
            if entering is None:
                return LPStatus.INFEASIBLE, iteration

            alpha_q = self.factors.ftran(self.a[:, entering])
            bound_r = lo[r] if to_lower else hi[r]
            step = (self.xb[r] - bound_r) / alpha[entering]
            self.xb -= step * alpha_q
            self.xb[r] = self.xn[entering] + step
            try:
                self.factors.update(alpha_q, r)
            except _SingularBasis:
                self.factors = None
            self._pivot(
                entering, r, step, _AT_LOWER if to_lower else _AT_UPPER
            )
            iteration += 1
            self.dual_pivots += 1
        return LPStatus.ITERATION_LIMIT, iteration

    def _dual_ratio_test(
        self, reduced: np.ndarray, alpha: np.ndarray, to_lower: bool
    ) -> Optional[int]:
        """Entering column keeping the reduced costs dual feasible."""
        flags = self.status_flags
        lb, ub = self.lb, self.ub
        movable = (flags != _BASIC) & (lb != ub)
        free = movable & ~np.isfinite(lb) & ~np.isfinite(ub)
        # Leaving variable sits below its lower bound (to_lower): its row
        # value must increase, so entering-at-lower needs alpha < 0 and
        # entering-at-upper needs alpha > 0; mirrored when above the upper.
        if to_lower:
            ok_low = movable & (flags == _AT_LOWER) & (alpha < -_PIVOT_TOL)
            ok_up = movable & (flags == _AT_UPPER) & (alpha > _PIVOT_TOL)
        else:
            ok_low = movable & (flags == _AT_LOWER) & (alpha > _PIVOT_TOL)
            ok_up = movable & (flags == _AT_UPPER) & (alpha < -_PIVOT_TOL)
        ok_free = free & (np.abs(alpha) > _PIVOT_TOL)
        candidates = ok_low | ok_up | ok_free
        if not np.any(candidates):
            return None
        idx = np.flatnonzero(candidates)
        ratios = np.abs(reduced[idx]) / np.abs(alpha[idx])
        best = ratios.min()
        ties = idx[ratios <= best + _TOL]
        # Prefer the largest pivot among the tied ratios for stability.
        return int(ties[np.argmax(np.abs(alpha[ties]))])

    # -- pivot bookkeeping ---------------------------------------------------

    def _pivot(
        self,
        entering: int,
        leaving_pos: int,
        t: float,
        entering_to: Optional[int],
    ) -> None:
        """Swap ``entering`` into the basis at row ``leaving_pos``.

        ``t`` is the signed step of the entering variable from its resting
        bound; ``entering_to`` is the bound status the *leaving* variable
        lands on (None when evicting a zero-valued artificial in place).
        """
        leaving = self.basis[leaving_pos]
        start = self.xn[entering]
        self.basis[leaving_pos] = entering
        self.status_flags[entering] = _BASIC
        self.xn[entering] = start + t
        if entering_to is None:
            # Artificial eviction at degenerate step: leaving var rests at 0.
            self.status_flags[leaving] = _AT_LOWER
            self.xn[leaving] = self.lb[leaving] if math.isfinite(self.lb[leaving]) else 0.0
        else:
            self.status_flags[leaving] = entering_to
            self.xn[leaving] = (
                self.lb[leaving] if entering_to == _AT_LOWER else self.ub[leaving]
            )


def _unit(size: int, index: int) -> np.ndarray:
    vec = np.zeros(size)
    vec[index] = 1.0
    return vec
