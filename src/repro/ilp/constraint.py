"""Linear constraints.

A constraint is stored in the normalized form ``expr (<=|>=|==) 0`` where
``expr`` is a :class:`repro.ilp.expr.LinExpr`. Normalization at construction
time keeps the model assembly and the matrix export simple.
"""

from __future__ import annotations

from typing import Mapping

from .expr import LinExpr, Var

__all__ = ["Constraint", "SENSES"]

SENSES = ("<=", ">=", "==")


class Constraint:
    """A linear constraint ``expr sense 0``.

    Parameters
    ----------
    expr:
        Left-hand side after moving everything to one side.
    sense:
        One of ``"<="``, ``">="``, ``"=="``.
    name:
        Optional identifier; the model assigns one if omitted.
    """

    __slots__ = ("expr", "sense", "name", "tag")

    def __init__(self, expr: LinExpr, sense: str, name: str = "", tag: str = "") -> None:
        if sense not in SENSES:
            raise ValueError(f"invalid constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name
        self.tag = tag

    @property
    def rhs(self) -> float:
        """Right-hand side when written as ``terms sense rhs``."""
        return -self.expr.constant

    def violation(self, assignment: Mapping[Var, float]) -> float:
        """Amount by which the assignment violates the constraint (0 if satisfied)."""
        lhs = self.expr.value(assignment)
        if self.sense == "<=":
            return max(0.0, lhs)
        if self.sense == ">=":
            return max(0.0, -lhs)
        return abs(lhs)

    def is_satisfied(self, assignment: Mapping[Var, float], tol: float = 1e-7) -> bool:
        return self.violation(assignment) <= tol

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense} 0{label})"
