"""Aircraft EPS component catalog — Table I of the paper.

Components and attributes:

========== ======= =====================================
Generators g (kW)  LG1 70, LG2 50, RG1 80, RG2 30, APU 100
Loads      l (kW)  LL1 30, LL2 10, RL1 10, RL2 20
Costs      c       generator g/10, bus 2000, rectifier 2000, contactor 1000
========== ======= =====================================

Only generators, buses and rectifiers fail, with probability 2e-4 (§V);
loads are perfect sinks, contactors (switches on edges) are perfect
actuation.
"""

from __future__ import annotations

from typing import Dict, List

from ..arch import ComponentSpec, Library, Role

__all__ = [
    "FAILURE_PROB",
    "SWITCH_COST",
    "BUS_COST",
    "RECTIFIER_COST",
    "GENERATOR_RATINGS",
    "LOAD_DEMANDS",
    "TYPE_ORDER",
    "generator",
    "ac_bus",
    "rectifier",
    "dc_bus",
    "load",
    "base_library_components",
]

FAILURE_PROB = 2e-4
SWITCH_COST = 1000.0
BUS_COST = 2000.0
RECTIFIER_COST = 2000.0

#: Table I generator ratings (kW); scaled templates cycle through these.
GENERATOR_RATINGS: Dict[str, float] = {
    "LG1": 70.0,
    "LG2": 50.0,
    "RG1": 80.0,
    "RG2": 30.0,
    "APU": 100.0,
}

#: Table I load demands (kW); scaled templates cycle through these.
LOAD_DEMANDS: Dict[str, float] = {
    "LL1": 30.0,
    "LL2": 10.0,
    "RL1": 10.0,
    "RL2": 20.0,
}

#: Partition order Pi_1 .. Pi_n of the EPS single-line diagram (n = 5).
TYPE_ORDER: List[str] = ["generator", "ac_bus", "rectifier", "dc_bus", "load"]


def generator(name: str, rating_kw: float) -> ComponentSpec:
    """A generator (or APU): cost is g/10 per Table I."""
    return ComponentSpec(
        name=name,
        ctype="generator",
        cost=rating_kw / 10.0,
        failure_prob=FAILURE_PROB,
        capacity=rating_kw,
        role=Role.SOURCE,
    )


def ac_bus(name: str) -> ComponentSpec:
    return ComponentSpec(
        name=name, ctype="ac_bus", cost=BUS_COST, failure_prob=FAILURE_PROB
    )


def rectifier(name: str) -> ComponentSpec:
    """A transformer rectifier unit (TRU)."""
    return ComponentSpec(
        name=name, ctype="rectifier", cost=RECTIFIER_COST, failure_prob=FAILURE_PROB
    )


def dc_bus(name: str) -> ComponentSpec:
    return ComponentSpec(
        name=name, ctype="dc_bus", cost=BUS_COST, failure_prob=FAILURE_PROB
    )


def load(name: str, demand_kw: float) -> ComponentSpec:
    """An essential load: perfect (p = 0) but its supply path can fail."""
    return ComponentSpec(
        name=name,
        ctype="load",
        cost=0.0,
        failure_prob=0.0,
        demand=demand_kw,
        role=Role.SINK,
    )


def base_library_components() -> List[ComponentSpec]:
    """The exact Table I component set (4 generators + APU, 4 loads)."""
    comps = [generator(n, g) for n, g in GENERATOR_RATINGS.items()]
    comps += [ac_bus(n) for n in ("LB1", "LB2", "RB1", "RB2")]
    comps += [rectifier(n) for n in ("LR1", "LR2", "RR1", "RR2")]
    comps += [dc_bus(n) for n in ("LD1", "LD2", "RD1", "RD2")]
    comps += [load(n, l) for n, l in LOAD_DEMANDS.items()]
    return comps
