"""Aircraft electric power system case study (§V of the paper).

Table I catalog, scalable single-line-diagram templates, the standard
connectivity/power-flow requirement pack, and ASCII diagram rendering.
"""

from .catalog import (
    BUS_COST,
    FAILURE_PROB,
    GENERATOR_RATINGS,
    LOAD_DEMANDS,
    RECTIFIER_COST,
    SWITCH_COST,
    TYPE_ORDER,
    base_library_components,
)
from .diagram import render_single_line
from .requirements import eps_requirements, eps_spec
from .template import EPS_GROUPS, build_eps_template, paper_template

__all__ = [
    "BUS_COST",
    "EPS_GROUPS",
    "FAILURE_PROB",
    "GENERATOR_RATINGS",
    "LOAD_DEMANDS",
    "RECTIFIER_COST",
    "SWITCH_COST",
    "TYPE_ORDER",
    "base_library_components",
    "build_eps_template",
    "eps_requirements",
    "eps_spec",
    "paper_template",
    "render_single_line",
]
