"""Scalable aircraft EPS architecture templates (§V, Fig. 1c).

The single-line diagram structure: generators (and optionally an APU) feed
AC buses; rectifier units convert to DC; DC buses feed the loads. Sibling
ties between buses of the same type use the paper's same-type-edge
shorthand for redundant components.

``build_eps_template(num_generators=2s)`` produces the |V| = 10s templates
of Tables II/III (20/30/40/50 nodes for 4/6/8/10 generators);
``paper_template()`` is the Table I instance with the APU included.
"""

from __future__ import annotations

from itertools import cycle
from typing import List, Optional, Tuple

from ..arch import ArchitectureTemplate, Library
from . import catalog

__all__ = ["build_eps_template", "paper_template", "EPS_GROUPS"]

#: (type label, name prefix) per layer, source to sink.
EPS_GROUPS: List[Tuple[str, str]] = [
    ("generator", "G"),
    ("ac_bus", "B"),
    ("rectifier", "R"),
    ("dc_bus", "D"),
    ("load", "L"),
]


def _side_names(prefix: str, side: str, count: int) -> List[str]:
    return [f"{side}{prefix}{i + 1}" for i in range(count)]


def build_eps_template(
    num_generators: int = 4,
    include_apu: bool = False,
    cross_side: bool = True,
    sibling_ties: bool = True,
    window: Optional[int] = None,
    name: Optional[str] = None,
) -> ArchitectureTemplate:
    """Construct an EPS template with ``num_generators`` generators.

    Every layer gets ``num_generators`` members (half per aircraft side), so
    ``|V| = 5 * num_generators`` (+1 when ``include_apu``); this matches the
    |V| / generator-count pairs of Tables II and III.

    Parameters
    ----------
    cross_side:
        Allow connections across the left/right split (cross ties). The
        high-reliability architectures of Figs. 2-3 need them.
    sibling_ties:
        Allow the same-type bus-to-bus shorthand edges.
    window:
        When set, each component may only connect to the ``window`` nearest
        members (by index, wrapping around) of the next layer — the sparse
        single-line-diagram structure the paper's scalability study relies
        on ("because of the sparsity of the EPS adjacency matrix ... it was
        possible to reduce the number of generated constraints"). ``None``
        allows every cross-layer pair.
    """
    if num_generators < 2 or num_generators % 2:
        raise ValueError("num_generators must be an even number >= 2")
    per_side = num_generators // 2

    library = Library(switch_cost=catalog.SWITCH_COST)
    ratings = cycle(catalog.GENERATOR_RATINGS[n] for n in ("LG1", "LG2", "RG1", "RG2"))
    demands = cycle(catalog.LOAD_DEMANDS[n] for n in ("LL1", "LL2", "RL1", "RL2"))

    gens: List[str] = []
    ac_buses: List[str] = []
    rectifiers: List[str] = []
    dc_buses: List[str] = []
    loads: List[str] = []
    for side in ("L", "R"):
        for g in _side_names("G", side, per_side):
            library.add(catalog.generator(g, next(ratings)))
            gens.append(g)
        for b in _side_names("B", side, per_side):
            library.add(catalog.ac_bus(b))
            ac_buses.append(b)
        for r in _side_names("R", side, per_side):
            library.add(catalog.rectifier(r))
            rectifiers.append(r)
        for d in _side_names("D", side, per_side):
            library.add(catalog.dc_bus(d))
            dc_buses.append(d)
        for l in _side_names("L", side, per_side):
            library.add(catalog.load(l, next(demands)))
            loads.append(l)
    if include_apu:
        library.add(catalog.generator("APU", catalog.GENERATOR_RATINGS["APU"]))
        gens.append("APU")
    library.set_type_order(catalog.TYPE_ORDER)

    node_names = gens + ac_buses + rectifiers + dc_buses + loads
    template = ArchitectureTemplate(
        library,
        node_names,
        name=name or f"eps{5 * num_generators}{'+apu' if include_apu else ''}",
    )

    def same_side(a: str, b: str) -> bool:
        return a.startswith("APU") or b.startswith("APU") or a[0] == b[0]

    def in_window(sources: List[str], s: str, dests: List[str], d: str) -> bool:
        if window is None or s == "APU":
            return True
        si, di = sources.index(s), dests.index(d)
        n = len(dests)
        span = min(abs(si - di), n - abs(si - di))  # circular distance
        return span < window

    def connect(sources: List[str], dests: List[str]) -> None:
        for s in sources:
            for d in dests:
                if (cross_side or same_side(s, d)) and in_window(sources, s, dests, d):
                    template.allow_edge(s, d)

    connect(gens, ac_buses)
    connect(ac_buses, rectifiers)
    connect(rectifiers, dc_buses)
    connect(dc_buses, loads)
    if sibling_ties:
        for group in (ac_buses, dc_buses):
            for i, a in enumerate(group):
                for j in range(i + 1, len(group)):
                    b = group[j]
                    if not (cross_side or same_side(a, b)):
                        continue
                    if window is not None:
                        span = min(j - i, len(group) - (j - i))
                        if span >= window:
                            continue
                    template.allow_bidirectional(a, b)

    if cross_side and window is None:
        # With full cross-layer connectivity, same-attribute nodes of a
        # layer are automorphic: declare the orbits so synthesis can break
        # the (factorially large) permutation symmetry.
        template.declare_interchangeable(ac_buses)
        template.declare_interchangeable(rectifiers)
        template.declare_interchangeable(dc_buses)
        by_rating: dict = {}
        for g in gens:
            by_rating.setdefault(library[g].capacity, []).append(g)
        for group in by_rating.values():
            if len(group) >= 2:
                template.declare_interchangeable(group)
    return template


def paper_template(include_apu: bool = True) -> ArchitectureTemplate:
    """The Table I / Fig. 1c instance: 4 generators (+APU), 4 of each bus
    type, 4 rectifiers, 4 loads, full cross-tie capability."""
    return build_eps_template(
        num_generators=4,
        include_apu=include_apu,
        cross_side=True,
        sibling_ties=True,
        name="eps-paper",
    )
