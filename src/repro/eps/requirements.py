"""Standard EPS requirement pack (§V connectivity and power-flow rules).

The constraints mirror the paper's description:

* every load must be attached to at least one DC bus;
* any rectifier is directly connected to at most one AC bus ("only one");
* a DC bus connected to a load or to another DC bus must be fed by at
  least one rectifier;
* a rectifier feeding a DC bus must be fed by an AC bus;
* an AC bus feeding anything must be fed by a generator (or the APU);
* total instantiated generation covers the total load demand (power flow,
  eq. 4 in its aggregate operating-condition form).
"""

from __future__ import annotations

from typing import List, Optional

from ..arch import ArchitectureTemplate
from ..synthesis import (
    ConnectionBound,
    GlobalPowerAdequacy,
    IfFeedsThenFed,
    Requirement,
    RequireIncomingEdge,
    SymmetryBreaking,
    SynthesisSpec,
)

__all__ = ["eps_requirements", "eps_spec"]


def _names_of_type(template: ArchitectureTemplate, ctype: str) -> List[str]:
    return [template.name_of(i) for i in template.nodes_of_type(ctype)]


def eps_requirements(template: ArchitectureTemplate) -> List[Requirement]:
    """The standard §V requirement pack for an EPS template."""
    gens = _names_of_type(template, "generator")
    ac = _names_of_type(template, "ac_bus")
    rect = _names_of_type(template, "rectifier")
    dc = _names_of_type(template, "dc_bus")
    loads = _names_of_type(template, "load")

    return [
        # Each load draws from at least one DC bus.
        RequireIncomingEdge(nodes=loads, k=1),
        # "Any rectifier must be directly connected to only one AC bus."
        ConnectionBound(sources=ac, dests=rect, k=1, sense="<=", per="dest"),
        # DC bus feeding a load or tied to another DC bus must be fed by a
        # rectifier.
        IfFeedsThenFed(via=dc, downstream=loads + dc, upstream=rect),
        # Rectifier feeding a DC bus must be fed by an AC bus.
        IfFeedsThenFed(via=rect, downstream=dc, upstream=ac),
        # AC bus feeding a rectifier or tied to another AC bus must be fed
        # by a generator (or the APU).
        IfFeedsThenFed(via=ac, downstream=rect + ac, upstream=gens),
        # Total generation covers total essential demand.
        GlobalPowerAdequacy(),
        # Prune permutations of interchangeable buses/rectifiers (declared
        # by the template builder; a no-op when no orbits are declared).
        SymmetryBreaking(),
    ]


def eps_spec(
    template: ArchitectureTemplate,
    reliability_target: Optional[float] = None,
) -> SynthesisSpec:
    """A ready-to-run synthesis spec for an EPS template."""
    return SynthesisSpec(
        template=template,
        requirements=eps_requirements(template),
        reliability_target=reliability_target,
    )
