"""ASCII single-line diagrams for EPS architectures.

Renders the layered structure of Fig. 1c in plain text, with the selected
edges drawn as adjacency lists per layer — enough to eyeball the redundancy
growth across Figs. 2 and 3 in a terminal.
"""

from __future__ import annotations

from typing import Dict, List

from ..arch import Architecture
from .catalog import TYPE_ORDER

__all__ = ["render_single_line"]


def render_single_line(arch: Architecture) -> str:
    """Multi-line single-line-diagram style rendering of an architecture."""
    t = arch.template
    used = set(arch.used_nodes())
    lines: List[str] = [f"EPS architecture  (cost = {arch.cost():.6g})"]

    successors: Dict[str, List[str]] = {}
    for (i, j) in sorted(arch.edges):
        successors.setdefault(t.name_of(i), []).append(t.name_of(j))

    for ctype in TYPE_ORDER:
        members = [i for i in t.nodes_of_type(ctype) if i in used]
        if not members:
            continue
        lines.append(f"{ctype:>10}: " + "  ".join(t.name_of(i) for i in sorted(members)))
        for i in sorted(members):
            name = t.name_of(i)
            outs = successors.get(name, [])
            if outs:
                lines.append(f"{'':>12}{name} --=-- {', '.join(sorted(outs))}")
    return "\n".join(lines)
