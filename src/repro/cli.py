"""``archex`` command-line interface.

Mirrors the paper's ARCHEX prototype workflow from a terminal:

``archex synthesize --domain eps --algorithm mr --target 2e-10``
    Run ILP-MR or ILP-AR on a built-in domain template and print the
    resulting single-line diagram, cost, and reliability report.
``archex analyze --domain eps --target 2e-10``
    Synthesize, then report per-sink exact and approximate reliability.
``archex scaling --sizes 20,30 --target 1e-11``
    A Table II style scaling sweep.
``archex tradeoff --levels 2e-3,2e-6,2e-10``
    Sweep the requirement, print the Pareto front (Fig. 3 generalized).
``archex sweep --jobs 4 --cache-dir .relcache``
    Batch design-space exploration through :mod:`repro.engine`: parallel
    workers, persistent reliability cache, JSONL run telemetry.
``archex verify --fuzz 50 --seed 0``
    Differential verification of the reliability engines: seed corpus +
    seeded fuzzing, metamorphic properties, Monte-Carlo cross-check, and
    a persistent-cache audit (see :mod:`repro.verify`). Exits nonzero on
    any confirmed disagreement.
``archex tree --telemetry sweep.jsonl``
    Render the B&B search tree (per-solve node/prune/incumbent roll-up)
    that a traced run streamed into its telemetry journal; ``--run ID``
    reads a stored service run instead.
``archex profile --trace-out trace.json synthesize --algorithm mr``
    Run any other subcommand under :mod:`repro.obs` tracing, print the
    profile tree (and metrics), and optionally write a Chrome trace JSON
    (``.json``, loadable in ``chrome://tracing`` / Perfetto) or a JSONL
    span stream (``.jsonl``, the telemetry file format).

The sweep-shaped commands (``scaling``, ``tradeoff``, ``sweep``) all route
through the exploration engine and accept ``--jobs`` / ``--cache-dir`` /
``--telemetry``. Every synthesis-shaped command also accepts ``--trace``
/ ``--trace-out`` as a shorthand for ``profile``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, List, Optional

from . import obs
from .bench import (
    PROFILES,
    append_history,
    compare_history,
    read_history,
    run_bench,
    validate_bench_document,
)
from .domains import domain_spec, eps_scaling_specs
from .ilp import configure_auto
from .arch import save_json
from .engine import (
    BACKEND_NAMES,
    EXECUTOR_MODES,
    requirement_sweep,
    run_batch,
    scaling_sweep,
    summarize_telemetry,
    tradeoff_points,
)
from .eps import render_single_line
from .reliability import approximate_failure, sink_failure_probabilities
from .report import (
    format_scientific,
    format_table,
    render_batch_summary,
    render_bench_comparison,
    render_metrics,
    render_profile,
    render_runs_table,
    render_verification_table,
    section,
)
from .synthesis import (
    SynthesisSpec,
    pareto_front,
    synthesize_ilp_ar,
    synthesize_ilp_mr,
    synthesize_ilp_tse,
)

__all__ = ["main", "build_parser"]


def _spec_for_domain(domain: str, target: Optional[float], size: int) -> SynthesisSpec:
    # Shared with the service's job-spec builders, so a CLI invocation and
    # a POSTed job spec construct byte-identical synthesis problems.
    try:
        return domain_spec(domain, target=target, size=size)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _run_synthesis(spec: SynthesisSpec, algorithm: str, backend: str, gap: Optional[float]):
    if algorithm == "mr":
        return synthesize_ilp_mr(spec, backend=backend, mip_rel_gap=gap)
    if algorithm == "mr-lazy":
        return synthesize_ilp_mr(spec, strategy="lazy", backend=backend, mip_rel_gap=gap)
    if algorithm == "ar":
        return synthesize_ilp_ar(spec, backend=backend, mip_rel_gap=gap)
    if algorithm == "tse":
        return synthesize_ilp_tse(spec, backend=backend, mip_rel_gap=gap)
    raise SystemExit(f"unknown algorithm {algorithm!r}")


def cmd_synthesize(args: argparse.Namespace) -> int:
    spec = _spec_for_domain(args.domain, args.target, args.size)
    result = _run_synthesis(spec, args.algorithm, args.backend, args.gap)
    print(result.summary())
    if result.architecture is not None:
        print()
        if args.domain == "eps":
            print(render_single_line(result.architecture))
        else:
            print(result.architecture.describe())
        if args.save_arch:
            save_json(result.architecture, args.save_arch)
            print(f"\nsaved architecture to {args.save_arch}")
    return 0 if result.feasible else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    spec = _spec_for_domain(args.domain, args.target, args.size)
    result = _run_synthesis(spec, args.algorithm, args.backend, args.gap)
    if not result.feasible:
        print(f"synthesis {result.status}")
        return 1
    arch = result.architecture
    rows = []
    for sink in spec.sinks():
        exact = sink_failure_probabilities(arch, [sink])[sink]
        approx = approximate_failure(arch, sink)
        rows.append(
            (
                sink,
                format_scientific(exact),
                format_scientific(approx.r_tilde),
                format_scientific(approx.bound_ratio),
                dict(sorted(approx.redundancy.items())),
            )
        )
    print(format_table(["sink", "r (exact)", "r~ (eq.7)", "Thm2 bound", "h_ij"], rows))
    print(f"\ntotal cost: {result.cost:.6g}")
    return 0


def _telemetry_path(args: argparse.Namespace) -> Optional[str]:
    """Explicit ``--telemetry`` path, or a default inside ``--cache-dir``."""
    if getattr(args, "telemetry", None):
        return args.telemetry
    if getattr(args, "cache_dir", None):
        return os.path.join(args.cache_dir, "telemetry.jsonl")
    return None


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Executor/cache-tier selection shared by every engine command."""
    return {
        "executor": getattr(args, "executor", None),
        "queue_dir": getattr(args, "queue_dir", None),
        "cache_backend": getattr(args, "cache_backend", "auto"),
        "cache_shards": getattr(args, "cache_shards", None),
    }


def _print_batch_footer(outcome, telemetry: Optional[str]) -> None:
    print(f"\n{outcome.summary()}")
    if telemetry and os.path.exists(telemetry):
        print(f"telemetry: {telemetry}")
        print(render_batch_summary(summarize_telemetry(telemetry)))


def _eps_scaling_specs(sizes: List[int], target: Optional[float]):
    return eps_scaling_specs(sizes, target=target)


def _run_scaling_batch(args: argparse.Namespace):
    batch = scaling_sweep(
        _eps_scaling_specs(args.sizes, args.target),
        algorithm=args.algorithm,
        backend=args.backend,
        mip_rel_gap=args.gap,
    )
    telemetry = _telemetry_path(args)
    outcome = run_batch(
        batch, jobs=args.jobs, cache_dir=args.cache_dir, telemetry=telemetry,
        **_engine_kwargs(args),
    )
    rows = []
    for res in outcome.results:
        result = res.unwrap()
        rows.append(
            (
                res.meta["label"],
                result.status,
                result.num_iterations or 1,
                f"{result.cost:.6g}",
                format_scientific(result.reliability),
                f"{result.analysis_time:.1f}",
                f"{result.solver_time:.1f}",
                f"{res.wall_time:.1f}",
            )
        )
    print(
        format_table(
            ["|V| (gens)", "status", "#iter", "cost", "r", "analysis (s)",
             "solver (s)", "wall (s)"],
            rows,
        )
    )
    return outcome, telemetry


def cmd_scaling(args: argparse.Namespace) -> int:
    outcome, telemetry = _run_scaling_batch(args)
    if args.jobs > 1 or args.cache_dir or telemetry:
        _print_batch_footer(outcome, telemetry)
    return 0


def _run_tradeoff_batch(args: argparse.Namespace):
    spec = _spec_for_domain(args.domain, None, args.size)
    algorithm = "ar" if args.algorithm in ("ar", "tse") else "mr"
    batch = requirement_sweep(
        spec, args.levels, algorithm=algorithm, backend=args.backend,
        mip_rel_gap=args.gap,
    )
    telemetry = _telemetry_path(args)
    outcome = run_batch(
        batch, jobs=args.jobs, cache_dir=args.cache_dir, telemetry=telemetry,
        **_engine_kwargs(args),
    )
    points = tradeoff_points(outcome.results)
    rows = [
        (
            format_scientific(p.r_star),
            "ok" if p.feasible else p.result.status,
            f"{p.cost:.6g}" if p.feasible else "-",
            format_scientific(p.reliability) if p.feasible else "-",
        )
        for p in points
    ]
    print(format_table(["r*", "status", "cost", "r (exact)"], rows))
    front = pareto_front(points)
    print("\nPareto front:")
    print(format_table(
        ["cost", "r (exact)"],
        [(f"{p.cost:.6g}", format_scientific(p.reliability)) for p in front],
    ))
    return outcome, telemetry


def cmd_tradeoff(args: argparse.Namespace) -> int:
    outcome, telemetry = _run_tradeoff_batch(args)
    if args.jobs > 1 or args.cache_dir or telemetry:
        _print_batch_footer(outcome, telemetry)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Batch design-space exploration with the engine front and center.

    A requirement sweep by default; ``--sizes`` switches to a Table II
    style scaling sweep. Always prints the batch summary (cache hits,
    wall time) and, when telemetry is on, the per-run roll-up table — the
    second run against a warm ``--cache-dir`` shows its speedup there.
    """
    if args.sizes:
        outcome, telemetry = _run_scaling_batch(args)
    else:
        outcome, telemetry = _run_tradeoff_batch(args)
    _print_batch_footer(outcome, telemetry)
    return 1 if outcome.num_failed else 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Differential verification of the reliability engines.

    Runs the seed corpus (closed-form graphs + the EPS case-study sinks)
    and ``--fuzz`` seeded random instances through every applicable exact
    engine, the metamorphic property battery, and the Monte-Carlo
    cross-check; audits a persistent cache when ``--cache-dir`` holds one.
    Failing fuzz cases are shrunk to minimal counterexamples and written
    to ``--repro-dir``. Exits 1 on any *confirmed* (non-statistical)
    finding; Monte-Carlo interval misses alone only warn.
    """
    from .engine.cache import CACHE_FILENAME
    from .verify import (
        audit_cache,
        corpus_cases,
        fuzz_cases,
        save_repro,
        shrink_problem,
        verification_batch,
        verify_problem,
    )

    cases = corpus_cases(include_eps=not args.no_eps)
    if args.fuzz > 0:
        cases.extend(fuzz_cases(args.fuzz, seed=args.seed))
    by_name = {c.name: c for c in cases}
    print(f"verifying {len(cases)} cases "
          f"({len(cases) - args.fuzz} corpus, {args.fuzz} fuzz, seed {args.seed})")

    batch = verification_batch(
        cases, tol=args.tol, mc_samples=args.mc_samples, seed=args.seed
    )
    telemetry = _telemetry_path(args)
    outcome = run_batch(
        batch, jobs=args.jobs, cache_dir=args.cache_dir, telemetry=telemetry,
        **_engine_kwargs(args),
    )

    findings: List[dict] = []
    checks = 0
    for res in outcome.results:
        if not res.ok:
            findings.append({
                "case": res.meta.get("case", res.job_id),
                "check": "job-error",
                "detail": f"{res.error_type}: {res.error}",
            })
            continue
        checks += res.value.get("checks_run", 0)
        findings.extend(res.value.get("findings", []))

    # Shrink failing fuzz cases to minimal repros (exact findings only —
    # shrinking against Monte-Carlo noise would chase the coin, not a bug).
    confirmed = [f for f in findings if not f.get("statistical")]
    failing_fuzz = sorted(
        {f["case"] for f in confirmed
         if by_name.get(f["case"]) is not None
         and by_name[f["case"]].origin == "fuzz"}
    )
    for name in failing_fuzz:
        def still_fails(problem):
            result = verify_problem(
                problem, case=name, tol=args.tol, mc_samples=0
            )
            return bool(result.confirmed_findings)

        shrunk = shrink_problem(by_name[name].problem, still_fails)
        path = save_repro(
            shrunk,
            os.path.join(args.repro_dir, name.replace("/", "_") + ".json"),
            case=name,
            findings=[f for f in confirmed if f["case"] == name],
            seed=args.seed,
        )
        print(f"repro written: {path}")

    # Audit a pre-existing persistent cache, when there is one.
    if args.cache_dir and os.path.exists(
        os.path.join(args.cache_dir, CACHE_FILENAME)
    ):
        report = audit_cache(
            args.cache_dir, sample=args.audit_sample, seed=args.seed,
            tol=args.tol,
        )
        print(
            f"cache audit: {report.audited}/{report.sampled} sampled entries "
            f"recomputed ({report.entries} total, {report.skipped} skipped)"
        )
        findings.extend(f.as_dict() for f in report.findings)
        confirmed = [f for f in findings if not f.get("statistical")]

    statistical = [f for f in findings if f.get("statistical")]
    if findings:
        print()
        print(render_verification_table(findings))
    if statistical and not confirmed:
        print(f"\nwarning: {len(statistical)} Monte-Carlo interval miss(es); "
              "no exactly confirmed disagreement")
    if confirmed:
        print(f"\nFAIL: {len(confirmed)} confirmed finding(s) "
              f"across {len(cases)} cases")
        return 1
    print(f"\nOK: {len(cases)} cases, {checks} checks, no confirmed findings")
    if telemetry and os.path.exists(telemetry):
        print(f"telemetry: {telemetry}")
    return 0


def _write_trace(tracer: obs.Tracer, path: str) -> None:
    """Write a finished trace: ``.jsonl`` -> span events, else Chrome JSON."""
    from .engine.telemetry import TelemetryWriter

    if path.endswith(".jsonl"):
        with TelemetryWriter(path, batch="trace") as writer:
            obs.export_spans_jsonl(writer, tracer.spans)
    else:
        # Records absorbed from pool/queue workers make the export a
        # stitched multi-process trace; without any it is the classic
        # single-process document.
        obs.write_chrome_trace(path, tracer.spans, metrics=obs.snapshot(),
                               records=tracer.records)
    print(f"trace written: {path}")


def _finish_trace(tracer: obs.Tracer, args: argparse.Namespace) -> None:
    print(section("profile"))
    print(render_profile(tracer.spans, limit=getattr(args, "top", None)))
    metrics = obs.snapshot()
    if metrics:
        print()
        print(render_metrics(metrics))
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        _write_trace(tracer, trace_out)


def _run_traced(args: argparse.Namespace) -> int:
    """Run a command function under tracing, then report the profile."""
    obs.reset_metrics()
    with obs.tracing() as tracer:
        code = args.func(args)
    _finish_trace(tracer, args)
    return code


def cmd_profile(args: argparse.Namespace) -> int:
    """Run any other subcommand under tracing (``archex profile -- ...``)."""
    argv = list(args.argv)
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv:
        raise SystemExit("profile: give a subcommand to run, e.g. "
                         "`archex profile synthesize --algorithm mr`")
    if argv[0] == "profile":
        raise SystemExit("profile: cannot profile itself")
    parser = build_parser()
    inner = parser.parse_args(argv)
    # The inner command's own --trace/--sample-profile flags are subsumed
    # by this wrapper (main() already consumed the outer ones).
    inner.trace = False
    inner.trace_out = None
    inner.sample_profile = None
    inner.serve = None
    inner.log = None
    obs.reset_metrics()
    with obs.tracing() as tracer:
        code = inner.func(inner)
    _finish_trace(tracer, args)
    return code


def _bench_sentinel(doc: dict, args: argparse.Namespace) -> int:
    """The ``--compare`` regression gate: compare, report, then append."""
    history = read_history(args.history, profile=doc.get("profile"))
    verdicts = compare_history(doc, history, threshold=args.threshold)
    print(section("bench regression sentinel"))
    print(render_bench_comparison(verdicts))
    regressions = [v for v in verdicts if v["status"] == "regression"]
    fresh = [v for v in verdicts if v["status"] == "no-history"]
    if fresh:
        print(f"\n{len(fresh)} metric(s) lack history "
              f"(need >= 2 prior runs in {args.history})")
    if not args.no_append:
        append_history(doc, args.history)
        print(f"appended this run to {args.history} "
              f"({len(history) + 1} entries for profile "
              f"{doc.get('profile')!r})")
    if regressions:
        names = ", ".join(v["metric"] for v in regressions)
        print(f"\nREGRESSION: {len(regressions)} metric(s) slower than the "
              f"history baseline: {names}")
        if args.warn_only:
            print("(warn-only mode: not failing the gate)")
            return 0
        return 1
    print("\nsentinel: no regressions against the history baseline")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.from_doc:
        with open(args.from_doc) as fh:
            doc = json.load(fh)
        print(f"loaded bench document {args.from_doc} "
              f"(profile {doc.get('profile')!r}, {len(doc.get('rows', []))} "
              "rows; skipping the measurement run)")
    else:
        out = None if args.out == "-" else args.out
        doc = run_bench(profile=args.profile, out=out, backends=args.backends)
    problems = validate_bench_document(doc)
    summary = doc["summary"]
    rows = [
        [
            r["instance"],
            r["backend"],
            f"{r['cold']['wall_seconds']:.2f}",
            f"{r['warm']['wall_seconds']:.2f}",
            f"{r['speedup']:.1f}x",
            f"{r['warm']['warm_hit_rate']:.0%}",
            "yes" if r["costs_identical"] else "NO",
        ]
        for r in doc["rows"] if r["kind"] == "ilp_mr"
    ]
    print(section("ILP-MR warm vs cold"))
    print(format_table(
        ["instance", "backend", "cold s", "warm s", "speedup",
         "warm hits", "costs equal"],
        rows,
    ))
    if summary["ilp_mr_min_speedup"] is not None:
        print(f"\nmin ILP-MR speedup: {summary['ilp_mr_min_speedup']:.1f}x")
    if problems:
        print("\nSCHEMA PROBLEMS:")
        for p in problems:
            print(f"  - {p}")
        return 1
    if not summary["all_costs_identical"] or not summary["all_objectives_agree"]:
        print("\nWARM/COLD DISAGREEMENT — see the document rows")
        return 1
    if args.compare:
        return _bench_sentinel(doc, args)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the synthesis service in the foreground until interrupted.

    Promotes the observability server into a durable job API: POST job
    specs to ``/api/jobs``, poll ``/api/jobs/<id>``, fetch the
    deterministic result document and evidence-packed artifacts. Runs
    persist under ``--runs-dir``; ``--resume`` requeues whatever a
    previous (crashed or killed) service left PENDING or RUNNING.
    """
    import time as _time

    from .service import JobQueue, RunStore, ServiceServer, resume_interrupted

    store = RunStore(args.runs_dir) if args.runs_dir else RunStore()
    if args.warehouse:
        obs.configure_auto_ingest(args.warehouse)
    queue = JobQueue(
        store,
        workers=args.workers,
        batch_jobs=args.jobs,
        cache_dir=args.cache_dir,
        default_timeout=args.job_timeout,
        cache_backend=args.cache_backend,
        cache_shards=args.cache_shards,
    ).start()
    if args.resume:
        resumed = resume_interrupted(store, queue)
        if resumed:
            print(f"resumed {len(resumed)} interrupted run(s): "
                  + ", ".join(r.run_id for r in resumed))
        else:
            print("no interrupted runs to resume")
    alerts = _build_alert_engine(args)
    server = ServiceServer(queue, host=args.host, port=args.port,
                           alerts=alerts).start()
    print(f"service: {server.url} "
          f"(POST /api/jobs; {args.workers} worker(s); "
          f"runs under {store.root}"
          + (f"; {len(alerts.rules)} alert rule(s)" if alerts else "")
          + (f"; warehouse {args.warehouse}" if args.warehouse else "")
          + ")")
    if args.port_file:
        # The ephemeral-port handshake for scripts (and the CI smoke job):
        # the actual bound port, written only once the socket is listening.
        with open(args.port_file, "w", encoding="utf-8") as fh:
            fh.write(f"{server.port}\n")
    deadline = (
        _time.time() + args.max_runtime if args.max_runtime is not None
        else None
    )
    try:
        while deadline is None or _time.time() < deadline:
            _time.sleep(0.2)
        print("max runtime reached; shutting down", file=sys.stderr)
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        server.stop()
        # Unstarted runs stay PENDING on disk for the next --resume.
        queue.shutdown(wait=True, timeout=args.drain_timeout)
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    """Inspect the durable run store: ``runs ls|show|verify|gc``."""
    from .service import RunStore, TERMINAL_STATES, verify_evidence

    store = RunStore(args.runs_dir) if args.runs_dir else RunStore()
    if args.action == "ls":
        records = store.list()
        manifests = [r.as_dict() for r in records]
        if getattr(args, "json", False):
            print(json.dumps(manifests, indent=2, sort_keys=True,
                             default=str))
        else:
            print(render_runs_table(manifests))
        return 0
    if args.action == "show":
        try:
            record = store.load(args.run_id)
        except KeyError as exc:
            raise SystemExit(str(exc))
        doc = record.as_dict()
        doc["spec"] = record.spec()
        doc["artifacts"] = sorted(
            p.name for p in record.path.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
        )
        print(json.dumps(doc, indent=2, sort_keys=True, default=str))
        worker_metrics = record.path / "worker_metrics.json"
        if worker_metrics.is_file():
            from .report import render_worker_metrics

            try:
                metrics_doc = json.loads(
                    worker_metrics.read_text(encoding="utf-8")
                )
            except ValueError:
                metrics_doc = {}
            if metrics_doc.get("workers"):
                print(section("worker metrics"))
                print(render_worker_metrics(metrics_doc))
        return 0
    if args.action == "verify":
        if args.run_id:
            try:
                records = [store.load(args.run_id)]
            except KeyError as exc:
                raise SystemExit(str(exc))
        else:
            records = store.list(states=TERMINAL_STATES)
        if not records:
            print("no terminal runs to verify")
            return 0
        tampered = 0
        for record in records:
            report = verify_evidence(record.path)
            print(f"{record.run_id}: {report.summary()}")
            if not report.ok:
                tampered += 1
        if tampered:
            print(f"\nFAIL: {tampered}/{len(records)} run(s) failed "
                  "evidence verification")
            return 1
        print(f"\nOK: {len(records)} run(s) verified")
        return 0
    if args.action == "gc":
        deleted = store.gc(keep=args.keep, max_age=args.older_than,
                           lease_ttl=args.lease_ttl)
        for run_id in deleted:
            print(f"deleted {run_id}")
        print(f"gc: removed {len(deleted)} run(s), kept the "
              f"{args.keep} newest terminal run(s)"
              + (" and every live-leased run" if args.older_than else ""))
        return 0
    raise SystemExit(f"unknown runs action {args.action!r}")


def cmd_tree(args: argparse.Namespace) -> int:
    """Render the B&B search tree streamed into a telemetry journal.

    Reads ``bnb_event`` records either from a raw telemetry file
    (``--telemetry``) or from a stored run's journal (``--run``), and
    prints the per-solve roll-up plus the incumbent trail.
    """
    from .engine.telemetry import read_events
    from .report import render_search_tree

    if args.telemetry:
        path = args.telemetry
    else:
        from .service import RunStore
        from .service.store import TELEMETRY_NAME

        store = RunStore(args.runs_dir) if args.runs_dir else RunStore()
        try:
            record = store.load(args.run)
        except KeyError as exc:
            raise SystemExit(str(exc))
        path = str(record.path / TELEMETRY_NAME)
    if not os.path.exists(path):
        raise SystemExit(f"no telemetry journal at {path}")
    events = [e for e in read_events(path) if e.get("event") == "bnb_event"]
    print(render_search_tree(events))
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Drain jobs from a shared work-queue directory until stopped.

    Point any number of these (on any host sharing the filesystem) at
    the ``--queue-dir`` a coordinator fills via ``--executor queue``.
    Workers lease jobs atomically, heartbeat while executing, and exit
    when the queue's stop file appears, after ``--max-jobs`` executions,
    or after ``--idle-timeout`` seconds with nothing claimable.
    """
    from .engine import run_worker

    print(f"worker: draining {args.queue_dir} "
          f"(lease ttl {args.lease_ttl}s, cache {args.cache_dir or 'memory'})")
    executed = run_worker(
        args.queue_dir,
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
        cache_shards=args.cache_shards,
        retries=args.retries,
        lease_ttl=args.lease_ttl,
        idle_timeout=args.idle_timeout,
        max_jobs=args.max_jobs,
    )
    print(f"worker: executed {executed} job(s)")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Telemetry warehouse operations: ``obs ingest|query|vacuum``."""
    from .obs.warehouse import TelemetryWarehouse

    with TelemetryWarehouse(args.warehouse) as wh:
        if args.obs_action == "ingest":
            total: dict = {}
            for path in args.files:
                if not os.path.exists(path):
                    raise SystemExit(f"no such file: {path}")
                counts = wh.ingest_file(path, kind=args.kind)
                for table, n in counts.items():
                    total[table] = total.get(table, 0) + n
                print(f"{path}: " + (", ".join(
                    f"{table}+{n}" for table, n in sorted(counts.items())
                ) or "nothing new"))
            print("warehouse totals: " + ", ".join(
                f"{table}={n}" for table, n in sorted(wh.counts().items())
            ))
            return 0
        if args.obs_action == "query":
            if args.sql:
                rows = wh.query(args.sql)
                if args.json:
                    print(json.dumps(rows, indent=2, sort_keys=True,
                                     default=str))
                elif rows:
                    headers = list(rows[0].keys())
                    print(format_table(
                        headers,
                        [[row.get(h) for h in headers] for row in rows],
                    ))
                else:
                    print("(no rows)")
                return 0
            # No SQL: the overview — per-table counts and recent batches.
            doc = {"counts": wh.counts(batch=args.batch),
                   "batches": wh.batches(limit=10)}
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True, default=str))
            else:
                print(format_table(
                    ["table", "rows"],
                    sorted(doc["counts"].items()),
                ))
                if doc["batches"]:
                    print()
                    print(section("recent batches"))
                    print(format_table(
                        ["batch", "name", "jobs", "ok", "failed", "wall (s)"],
                        [(b["batch"], b.get("name") or "?",
                          b.get("jobs") if b.get("jobs") is not None else "?",
                          b.get("ok") if b.get("ok") is not None else "?",
                          b.get("failed") if b.get("failed") is not None
                          else "?",
                          f"{b['wall_time']:.2f}"
                          if b.get("wall_time") is not None else "-")
                         for b in doc["batches"]],
                    ))
            return 0
        if args.obs_action == "vacuum":
            deleted = wh.vacuum(max_age=args.max_age,
                                keep_batches=args.keep_batches)
            if deleted:
                print("vacuum: deleted " + ", ".join(
                    f"{table}={n}" for table, n in sorted(deleted.items())
                ))
            else:
                print("vacuum: nothing to delete (database compacted)")
            return 0
    raise SystemExit(f"unknown obs action {args.obs_action!r}")


def cmd_top(args: argparse.Namespace) -> int:
    """Live fleet dashboard over a coordinator's HTTP endpoints."""
    from .obs.dashboard import run_dashboard

    url = args.url or f"http://127.0.0.1:{args.port}"
    return run_dashboard(
        url,
        interval=args.interval,
        iterations=args.iterations,
        once=args.once,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="archex",
        description="Reliable cost-optimal CPS architecture synthesis "
        "(DATE 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def obs_args(p: argparse.ArgumentParser) -> None:
        """Live observability flags shared by every long-running command."""
        p.add_argument("--serve", type=int, default=None, metavar="PORT",
                       help="expose /metrics (Prometheus), /runs and "
                       "/healthz on 127.0.0.1:PORT for the duration of the "
                       "command (0 = pick an ephemeral port)")
        p.add_argument("--log", default=None, metavar="FILE",
                       help="append structured JSON logs (run/job/span "
                       "correlated) to FILE")
        p.add_argument("--log-level", default="info",
                       choices=["debug", "info", "warning", "error"],
                       help="minimum level for --log records")
        p.add_argument("--log-max-bytes", type=int, default=0,
                       metavar="BYTES",
                       help="rotate the --log file when it would exceed "
                       "BYTES (0 = never rotate)")
        p.add_argument("--log-backups", type=int, default=3, metavar="N",
                       help="rotated --log files to keep (default 3)")
        p.add_argument("--alerts", default=None, metavar="FILE",
                       help="alert rules (TOML) evaluated while --serve "
                       "runs; firing alerts appear at /api/alerts and "
                       "degrade /healthz (default: .archex/alerts.toml "
                       "when present)")
        p.add_argument("--sample-profile", default=None, metavar="FILE",
                       help="run under the wall-clock sampling profiler and "
                       "write collapsed stacks (flamegraph.pl / speedscope "
                       "input) to FILE")
        p.add_argument("--sample-interval", type=float, default=0.005,
                       metavar="SECONDS",
                       help="sampling profiler period (default 5ms)")

    def common(p: argparse.ArgumentParser) -> None:
        obs_args(p)
        p.add_argument("--domain", default="eps",
                       choices=["eps", "power-grid", "comm-net"])
        p.add_argument("--algorithm", default="mr", choices=["mr", "mr-lazy", "ar", "tse"])
        p.add_argument("--target", type=float, default=2e-10,
                       help="reliability requirement r* (failure probability)")
        p.add_argument("--backend", default="auto", choices=["auto", "bnb", "scipy"])
        p.add_argument("--gap", type=float, default=None,
                       help="relative MIP gap (speeds up large instances)")
        p.add_argument("--size", type=int, default=0,
                       help="EPS generator count (0 = the paper's template)")
        p.add_argument("--save-arch", default=None, metavar="FILE",
                       help="save the synthesized architecture as JSON")
        p.add_argument("--trace", action="store_true",
                       help="run under repro.obs tracing and print the "
                       "profile tree afterwards")
        p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the trace (.json = Chrome trace event "
                       "format, .jsonl = telemetry span stream); implies "
                       "--trace")
        p.add_argument("--auto-scipy-vars", type=int, default=None, metavar="N",
                       help="auto-backend cutover: route to HiGHS above N "
                       "variables (default: calibrated from BENCH_ilp.json)")
        p.add_argument("--auto-scipy-constrs", type=int, default=None,
                       metavar="N",
                       help="auto-backend cutover: route to HiGHS above N "
                       "constraints")

    def cache_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-backend", default="auto",
                       choices=list(BACKEND_NAMES),
                       help="persistent cache tier: sqlite (one WAL file), "
                       "sharded (per-shard files for concurrent writers), "
                       "memory, or auto (sharded iff --cache-shards given)")
        p.add_argument("--cache-shards", type=int, default=None, metavar="K",
                       help="shard count for the sharded tier (16-256; "
                       "implies --cache-backend sharded under auto)")

    def engine_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the sweep (1 = serial)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent reliability cache directory "
                       "(shared across runs and workers)")
        cache_args(p)
        p.add_argument("--executor", default=None,
                       choices=list(EXECUTOR_MODES),
                       help="execution mode (default: serial for --jobs 1, "
                       "pool otherwise; queue = file-backed work queue)")
        p.add_argument("--queue-dir", default=None, metavar="DIR",
                       help="work-queue directory for --executor queue "
                       "(shared with standalone `worker` processes; "
                       "default: a throwaway queue)")
        p.add_argument("--telemetry", default=None, metavar="FILE",
                       help="append JSONL run telemetry to FILE "
                       "(default: <cache-dir>/telemetry.jsonl)")
        p.add_argument("--warehouse", default=None, metavar="DB",
                       help="auto-ingest each batch's telemetry journal "
                       "into this SQLite warehouse when the batch ends "
                       "(query it with `obs query`)")

    p_syn = sub.add_parser("synthesize", help="synthesize an optimal architecture")
    common(p_syn)
    p_syn.set_defaults(func=cmd_synthesize)

    p_an = sub.add_parser("analyze", help="synthesize and report reliability detail")
    common(p_an)
    p_an.set_defaults(func=cmd_analyze)

    p_sc = sub.add_parser("scaling", help="Table II style scaling sweep")
    common(p_sc)
    engine_args(p_sc)
    p_sc.add_argument("--sizes", type=lambda s: [int(x) for x in s.split(",")],
                      default=[20, 30])
    p_sc.set_defaults(func=cmd_scaling)

    p_to = sub.add_parser("tradeoff", help="requirement sweep + Pareto front")
    common(p_to)
    engine_args(p_to)
    p_to.add_argument("--levels", type=lambda s: [float(x) for x in s.split(",")],
                      default=[2e-3, 2e-6, 2e-10])
    p_to.set_defaults(func=cmd_tradeoff)

    p_sw = sub.add_parser(
        "sweep",
        help="batch design-space exploration (parallel, cached, telemetered)",
    )
    common(p_sw)
    engine_args(p_sw)
    p_sw.add_argument("--levels", type=lambda s: [float(x) for x in s.split(",")],
                      default=[2e-3, 2e-6, 2e-10],
                      help="requirement levels to sweep")
    p_sw.add_argument("--sizes", type=lambda s: [int(x) for x in s.split(",")],
                      default=None,
                      help="EPS |V| sizes: run a scaling sweep instead of a "
                      "requirement sweep")
    p_sw.set_defaults(func=cmd_sweep)

    p_vf = sub.add_parser(
        "verify",
        help="differential verification + fuzzing of the reliability engines",
    )
    engine_args(p_vf)
    p_vf.add_argument("--fuzz", type=int, default=50, metavar="N",
                      help="number of seeded random fuzz cases (0 = corpus only)")
    p_vf.add_argument("--seed", type=int, default=0,
                      help="fuzz/Monte-Carlo/audit sampling seed")
    p_vf.add_argument("--tol", type=float, default=1e-9,
                      help="relative tolerance for exact-engine agreement")
    p_vf.add_argument("--mc-samples", type=int, default=5000, metavar="N",
                      help="Monte-Carlo samples per case (0 disables the "
                      "statistical cross-check)")
    p_vf.add_argument("--audit-sample", type=int, default=25, metavar="N",
                      help="cache entries to recompute when auditing "
                      "--cache-dir")
    p_vf.add_argument("--repro-dir", default="verify-repros", metavar="DIR",
                      help="where shrunk counterexamples are written")
    p_vf.add_argument("--no-eps", action="store_true",
                      help="skip the (slower) EPS case-study corpus cases")
    obs_args(p_vf)
    p_vf.set_defaults(func=cmd_verify)

    p_bn = sub.add_parser(
        "bench",
        help="run the ILP benchmark suite and write BENCH_ilp.json",
    )
    p_bn.add_argument("--profile", default="smoke", choices=sorted(PROFILES),
                      help="workload size (smoke = CI-friendly, full = the "
                      "numbers quoted in the README)")
    p_bn.add_argument("--out", default="BENCH_ilp.json", metavar="FILE",
                      help="output document path ('-' = stdout only)")
    p_bn.add_argument("--backends", default="bnb,scipy",
                      type=lambda s: [x for x in s.split(",") if x],
                      help="comma list of MILP backends to measure")
    p_bn.add_argument("--from", dest="from_doc", default=None, metavar="FILE",
                      help="load an existing bench document instead of "
                      "re-running the suite (pairs with --compare)")
    p_bn.add_argument("--compare", action="store_true",
                      help="run the regression sentinel: compare against "
                      "--history, append this run, exit 1 on regressions")
    p_bn.add_argument("--history", default="BENCH_history.jsonl",
                      metavar="FILE",
                      help="bench history ledger (JSONL, one run per line)")
    p_bn.add_argument("--threshold", type=float, default=0.5,
                      help="relative slowdown beyond the history median that "
                      "counts as a regression (0.5 = 50%%)")
    p_bn.add_argument("--warn-only", action="store_true",
                      help="report regressions without failing the gate")
    p_bn.add_argument("--no-append", action="store_true",
                      help="do not record this run in the history ledger")
    obs_args(p_bn)
    p_bn.set_defaults(func=cmd_bench)

    p_sv = sub.add_parser(
        "serve",
        help="run the synthesis service: durable job API over HTTP",
    )
    p_sv.add_argument("--host", default="127.0.0.1",
                      help="bind address (default: loopback only)")
    p_sv.add_argument("--port", type=int, default=8181,
                      help="TCP port (0 = pick an ephemeral port; see "
                      "--port-file)")
    p_sv.add_argument("--port-file", default=None, metavar="FILE",
                      help="write the actual bound port to FILE once "
                      "listening (pairs with --port 0)")
    p_sv.add_argument("--runs-dir", default=None, metavar="DIR",
                      help="durable run store root "
                      "(default: .archex/runs)")
    p_sv.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="persistent reliability cache shared by all "
                      "service runs")
    cache_args(p_sv)
    p_sv.add_argument("--workers", type=int, default=1, metavar="N",
                      help="concurrent runs (worker threads)")
    p_sv.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="engine worker processes per run (1 = serial)")
    p_sv.add_argument("--job-timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="default per-run wall-clock timeout (a spec's "
                      "own timeout wins)")
    p_sv.add_argument("--resume", action="store_true",
                      help="requeue runs a previous service left PENDING "
                      "or RUNNING (crash recovery)")
    p_sv.add_argument("--max-runtime", type=float, default=None,
                      metavar="SECONDS",
                      help="exit after SECONDS (default: run until "
                      "interrupted)")
    p_sv.add_argument("--drain-timeout", type=float, default=30.0,
                      metavar="SECONDS",
                      help="how long shutdown waits for in-flight runs")
    p_sv.add_argument("--log", default=None, metavar="FILE",
                      help="append structured JSON logs to FILE")
    p_sv.add_argument("--log-level", default="info",
                      choices=["debug", "info", "warning", "error"],
                      help="minimum level for --log records")
    p_sv.add_argument("--log-max-bytes", type=int, default=0,
                      metavar="BYTES",
                      help="rotate the --log file when it would exceed "
                      "BYTES (0 = never rotate)")
    p_sv.add_argument("--log-backups", type=int, default=3, metavar="N",
                      help="rotated --log files to keep (default 3)")
    p_sv.add_argument("--alerts", default=None, metavar="FILE",
                      help="alert rules (TOML) the service evaluates; "
                      "firing alerts appear at /api/alerts and degrade "
                      "/healthz (default: .archex/alerts.toml when present)")
    p_sv.add_argument("--warehouse", default=None, metavar="DB",
                      help="auto-ingest every finished run's telemetry "
                      "journal into this SQLite warehouse")
    p_sv.set_defaults(func=cmd_serve)

    p_rn = sub.add_parser(
        "runs",
        help="inspect the durable run store (ls, show, verify, gc)",
    )
    p_rn.add_argument("--runs-dir", default=None, metavar="DIR",
                      help="durable run store root "
                      "(default: .archex/runs)")
    rn_sub = p_rn.add_subparsers(dest="action", required=True)
    rn_ls = rn_sub.add_parser("ls", help="list runs, newest first")
    rn_ls.add_argument("--json", action="store_true",
                       help="emit the manifests as a JSON array (stable "
                       "newest-first order) instead of the ASCII table")
    rn_show = rn_sub.add_parser(
        "show", help="print one run's manifest, spec, and artifacts"
    )
    rn_show.add_argument("run_id")
    rn_verify = rn_sub.add_parser(
        "verify",
        help="verify evidence packs (all terminal runs, or one run id); "
        "exits 1 on tampering",
    )
    rn_verify.add_argument("run_id", nargs="?", default=None)
    rn_gc = rn_sub.add_parser(
        "gc", help="delete terminal runs beyond the newest --keep"
    )
    rn_gc.add_argument("--keep", type=int, default=20, metavar="N",
                       help="terminal runs to keep (newest first)")
    rn_gc.add_argument("--older-than", type=float, default=None,
                       metavar="SECONDS",
                       help="also collect stale PENDING/RUNNING runs older "
                       "than SECONDS — unless a live lease (heartbeat) "
                       "shows an executor still owns them")
    rn_gc.add_argument("--lease-ttl", type=float, default=300.0,
                       metavar="SECONDS",
                       help="heartbeat age beyond which a non-terminal "
                       "run's lease counts as dead (default 300)")
    for rn_p in (rn_ls, rn_show, rn_verify, rn_gc):
        # Also accepted after the action (`runs ls --runs-dir X`), not
        # just before it — the action-level value wins when both appear.
        rn_p.add_argument("--runs-dir", default=None, metavar="DIR",
                          help=argparse.SUPPRESS)
        rn_p.set_defaults(func=cmd_runs)
    p_rn.set_defaults(func=cmd_runs)

    p_wk = sub.add_parser(
        "worker",
        help="drain a shared work-queue directory (pairs with "
        "--executor queue)",
    )
    p_wk.add_argument("--queue-dir", required=True, metavar="DIR",
                      help="the work-queue directory to lease jobs from")
    p_wk.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="persistent reliability cache directory")
    cache_args(p_wk)
    p_wk.add_argument("--retries", type=int, default=1, metavar="N",
                      help="extra attempts for transiently failing jobs")
    p_wk.add_argument("--lease-ttl", type=float, default=60.0,
                      metavar="SECONDS",
                      help="heartbeat age after which a peer's lease is "
                      "re-queued (default 60)")
    p_wk.add_argument("--idle-timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="exit after SECONDS without claimable work "
                      "(default: run until the stop file appears)")
    p_wk.add_argument("--max-jobs", type=int, default=None, metavar="N",
                      help="exit after executing N jobs")
    # Workers take the full observability flag set: with --log every
    # record carries the run id, job digest, and lease attempt the
    # worker's log context binds per lease.
    obs_args(p_wk)
    p_wk.set_defaults(func=cmd_worker)

    p_tree = sub.add_parser(
        "tree",
        help="render the B&B search tree from run telemetry",
    )
    tree_src = p_tree.add_mutually_exclusive_group(required=True)
    tree_src.add_argument("--telemetry", default=None, metavar="FILE",
                          help="telemetry journal carrying bnb_event "
                          "records (e.g. a sweep's --telemetry file)")
    tree_src.add_argument("--run", default=None, metavar="RUN_ID",
                          help="render a stored run's journal instead")
    p_tree.add_argument("--runs-dir", default=None, metavar="DIR",
                        help="durable run store root for --run "
                        "(default: .archex/runs)")
    p_tree.set_defaults(func=cmd_tree)

    p_ob = sub.add_parser(
        "obs",
        help="telemetry warehouse: ingest journals, query SQL, vacuum",
    )
    p_ob.add_argument("--warehouse", default=".archex/warehouse.db",
                      metavar="DB", help="SQLite warehouse path")
    ob_sub = p_ob.add_subparsers(dest="obs_action", required=True)
    ob_in = ob_sub.add_parser(
        "ingest", help="ingest telemetry/obslog JSONL files (incremental)"
    )
    ob_in.add_argument("files", nargs="+", metavar="FILE",
                       help="JSONL streams (batch telemetry, obslog, "
                       "worker spools)")
    ob_in.add_argument("--kind", default="auto",
                       choices=["auto", "telemetry", "log"],
                       help="force the stream kind (default: sniff each "
                       "record)")
    ob_qr = ob_sub.add_parser(
        "query", help="run read-only SQL (no SQL = warehouse overview)"
    )
    ob_qr.add_argument("sql", nargs="?", default=None,
                       help="SELECT statement over batches/jobs/spans/"
                       "metric_deltas/bnb_events/logs")
    ob_qr.add_argument("--batch", default=None, metavar="ID",
                       help="scope the overview counts to one batch id")
    ob_qr.add_argument("--json", action="store_true",
                       help="emit rows as JSON instead of a table")
    ob_vc = ob_sub.add_parser(
        "vacuum", help="apply retention and compact the database"
    )
    ob_vc.add_argument("--max-age", type=float, default=None,
                       metavar="SECONDS",
                       help="drop batches (and logs) older than SECONDS")
    ob_vc.add_argument("--keep-batches", type=int, default=None, metavar="N",
                       help="keep only the N most recent batches")
    for ob_p in (ob_in, ob_qr, ob_vc):
        ob_p.add_argument("--warehouse", default=".archex/warehouse.db",
                          metavar="DB", help=argparse.SUPPRESS)
        ob_p.set_defaults(func=cmd_obs)
    p_ob.set_defaults(func=cmd_obs)

    p_tp = sub.add_parser(
        "top",
        help="live fleet dashboard (curses) over a coordinator's HTTP API",
    )
    p_tp.add_argument("--url", default=None, metavar="URL",
                      help="coordinator base URL (e.g. http://host:8181); "
                      "wins over --port")
    p_tp.add_argument("--port", type=int, default=8181,
                      help="local coordinator port when --url is not given")
    p_tp.add_argument("--interval", type=float, default=2.0,
                      metavar="SECONDS", help="refresh period")
    p_tp.add_argument("--once", action="store_true",
                      help="print one plain-text frame and exit (no tty "
                      "needed; exit 1 when the coordinator is unreachable)")
    p_tp.add_argument("--iterations", type=int, default=None,
                      metavar="N", help=argparse.SUPPRESS)
    p_tp.set_defaults(func=cmd_top)

    p_pr = sub.add_parser(
        "profile",
        help="run any subcommand under tracing; print the profile tree",
    )
    p_pr.add_argument("--trace-out", default=None, metavar="FILE",
                      help="write the trace (.json = Chrome trace event "
                      "format, .jsonl = telemetry span stream)")
    p_pr.add_argument("--top", type=int, default=None, metavar="N",
                      help="only print the first N rows of the profile tree")
    p_pr.add_argument("argv", nargs=argparse.REMAINDER,
                      help="the subcommand (and its arguments) to profile")
    p_pr.set_defaults(func=cmd_profile)
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    if args.func is not cmd_profile and (
        getattr(args, "trace", False) or getattr(args, "trace_out", None)
    ):
        return _run_traced(args)
    return args.func(args)


def _run_sampled(args: argparse.Namespace, inner: Callable[[argparse.Namespace], int]) -> int:
    """Run ``inner`` under the wall-clock sampling profiler."""
    profiler = obs.SamplingProfiler(interval=args.sample_interval)
    with profiler:
        code = inner(args)
    profiler.write_collapsed(args.sample_profile)
    print(f"sampling profile written: {args.sample_profile} "
          f"({profiler.samples} samples, {len(profiler)} distinct stacks "
          f"@ {args.sample_interval * 1000:.1f}ms)")
    return code


def _build_alert_engine(args: argparse.Namespace):
    """An AlertEngine from ``--alerts`` (or the default rules file)."""
    from .obs.alerts import DEFAULT_RULES_PATH, AlertEngine, load_alert_rules

    explicit = getattr(args, "alerts", None)
    if explicit:
        rules = load_alert_rules(explicit)
        if not rules:
            print(f"warning: no alert rules in {explicit}", file=sys.stderr)
    elif DEFAULT_RULES_PATH.exists():
        rules = load_alert_rules(DEFAULT_RULES_PATH)
    else:
        return None
    return AlertEngine(rules) if rules else None


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "auto_scipy_vars", None) is not None or getattr(
        args, "auto_scipy_constrs", None
    ) is not None:
        configure_auto(
            scipy_vars=args.auto_scipy_vars,
            scipy_constrs=args.auto_scipy_constrs,
        )
    if getattr(args, "log", None):
        obs.configure_obslog(
            path=args.log, level=getattr(args, "log_level", "info"),
            max_bytes=getattr(args, "log_max_bytes", 0),
            backups=getattr(args, "log_backups", 3),
        )
    if getattr(args, "warehouse", None) and args.func is not cmd_obs:
        obs.configure_auto_ingest(args.warehouse)
    server = None
    if getattr(args, "serve", None) is not None:
        server = obs.ObsServer(port=args.serve,
                               alerts=_build_alert_engine(args))
        server.start()
        print(f"observability server: {server.url} "
              "(/metrics /runs /healthz /api/alerts)", file=sys.stderr)
    try:
        if getattr(args, "sample_profile", None):
            return _run_sampled(args, _dispatch)
        return _dispatch(args)
    finally:
        if server is not None:
            server.stop()
        if getattr(args, "warehouse", None):
            obs.configure_auto_ingest(None)
        if getattr(args, "log", None):
            obs.configure_obslog()  # detach the sink; flush is per-record


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
