"""``archex`` command-line interface.

Mirrors the paper's ARCHEX prototype workflow from a terminal:

``archex synthesize --domain eps --algorithm mr --target 2e-10``
    Run ILP-MR or ILP-AR on a built-in domain template and print the
    resulting single-line diagram, cost, and reliability report.
``archex analyze --domain eps --target 2e-10``
    Synthesize, then report per-sink exact and approximate reliability.
``archex scaling --sizes 20,30 --target 1e-11``
    A Table II style scaling sweep.
``archex tradeoff --levels 2e-3,2e-6,2e-10``
    Sweep the requirement, print the Pareto front (Fig. 3 generalized).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .domains import build_comm_network_template, build_power_grid_template
from .domains.comm_network import comm_network_requirements
from .domains.power_grid import power_grid_requirements
from .arch import save_json
from .eps import build_eps_template, eps_requirements, paper_template, render_single_line
from .reliability import approximate_failure, sink_failure_probabilities
from .report import format_scientific, format_table
from .synthesis import (
    SynthesisSpec,
    explore_tradeoff,
    pareto_front,
    synthesize_ilp_ar,
    synthesize_ilp_mr,
    synthesize_ilp_tse,
)

__all__ = ["main", "build_parser"]


def _spec_for_domain(domain: str, target: Optional[float], size: int) -> SynthesisSpec:
    if domain == "eps":
        template = paper_template() if size == 0 else build_eps_template(size)
        requirements = eps_requirements(template)
    elif domain == "power-grid":
        template = build_power_grid_template()
        requirements = power_grid_requirements(template)
    elif domain == "comm-net":
        template = build_comm_network_template()
        requirements = comm_network_requirements(template)
    else:
        raise SystemExit(f"unknown domain {domain!r}")
    return SynthesisSpec(
        template=template, requirements=requirements, reliability_target=target
    )


def _run_synthesis(spec: SynthesisSpec, algorithm: str, backend: str, gap: Optional[float]):
    if algorithm == "mr":
        return synthesize_ilp_mr(spec, backend=backend, mip_rel_gap=gap)
    if algorithm == "mr-lazy":
        return synthesize_ilp_mr(spec, strategy="lazy", backend=backend, mip_rel_gap=gap)
    if algorithm == "ar":
        return synthesize_ilp_ar(spec, backend=backend, mip_rel_gap=gap)
    if algorithm == "tse":
        return synthesize_ilp_tse(spec, backend=backend, mip_rel_gap=gap)
    raise SystemExit(f"unknown algorithm {algorithm!r}")


def cmd_synthesize(args: argparse.Namespace) -> int:
    spec = _spec_for_domain(args.domain, args.target, args.size)
    result = _run_synthesis(spec, args.algorithm, args.backend, args.gap)
    print(result.summary())
    if result.architecture is not None:
        print()
        if args.domain == "eps":
            print(render_single_line(result.architecture))
        else:
            print(result.architecture.describe())
        if args.save_arch:
            save_json(result.architecture, args.save_arch)
            print(f"\nsaved architecture to {args.save_arch}")
    return 0 if result.feasible else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    spec = _spec_for_domain(args.domain, args.target, args.size)
    result = _run_synthesis(spec, args.algorithm, args.backend, args.gap)
    if not result.feasible:
        print(f"synthesis {result.status}")
        return 1
    arch = result.architecture
    rows = []
    for sink in spec.sinks():
        exact = sink_failure_probabilities(arch, [sink])[sink]
        approx = approximate_failure(arch, sink)
        rows.append(
            (
                sink,
                format_scientific(exact),
                format_scientific(approx.r_tilde),
                format_scientific(approx.bound_ratio),
                dict(sorted(approx.redundancy.items())),
            )
        )
    print(format_table(["sink", "r (exact)", "r~ (eq.7)", "Thm2 bound", "h_ij"], rows))
    print(f"\ntotal cost: {result.cost:.6g}")
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    rows = []
    for size_nodes in args.sizes:
        gens = size_nodes // 5
        template = build_eps_template(num_generators=gens)
        spec = SynthesisSpec(
            template=template,
            requirements=eps_requirements(template),
            reliability_target=args.target,
        )
        start = time.perf_counter()
        result = _run_synthesis(spec, args.algorithm, args.backend, args.gap)
        wall = time.perf_counter() - start
        rows.append(
            (
                f"{size_nodes} ({gens})",
                result.status,
                result.num_iterations or 1,
                f"{result.cost:.6g}",
                format_scientific(result.reliability),
                f"{result.analysis_time:.1f}",
                f"{result.solver_time:.1f}",
                f"{wall:.1f}",
            )
        )
    print(
        format_table(
            ["|V| (gens)", "status", "#iter", "cost", "r", "analysis (s)",
             "solver (s)", "wall (s)"],
            rows,
        )
    )
    return 0


def cmd_tradeoff(args: argparse.Namespace) -> int:
    spec = _spec_for_domain(args.domain, None, args.size)
    algorithm = "ar" if args.algorithm in ("ar", "tse") else "mr"
    points = explore_tradeoff(
        spec, args.levels, algorithm=algorithm, backend=args.backend,
        mip_rel_gap=args.gap,
    )
    rows = [
        (
            format_scientific(p.r_star),
            "ok" if p.feasible else p.result.status,
            f"{p.cost:.6g}" if p.feasible else "-",
            format_scientific(p.reliability) if p.feasible else "-",
        )
        for p in points
    ]
    print(format_table(["r*", "status", "cost", "r (exact)"], rows))
    front = pareto_front(points)
    print("\nPareto front:")
    print(format_table(
        ["cost", "r (exact)"],
        [(f"{p.cost:.6g}", format_scientific(p.reliability)) for p in front],
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="archex",
        description="Reliable cost-optimal CPS architecture synthesis "
        "(DATE 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--domain", default="eps",
                       choices=["eps", "power-grid", "comm-net"])
        p.add_argument("--algorithm", default="mr", choices=["mr", "mr-lazy", "ar", "tse"])
        p.add_argument("--target", type=float, default=2e-10,
                       help="reliability requirement r* (failure probability)")
        p.add_argument("--backend", default="auto", choices=["auto", "bnb", "scipy"])
        p.add_argument("--gap", type=float, default=None,
                       help="relative MIP gap (speeds up large instances)")
        p.add_argument("--size", type=int, default=0,
                       help="EPS generator count (0 = the paper's template)")
        p.add_argument("--save-arch", default=None, metavar="FILE",
                       help="save the synthesized architecture as JSON")

    p_syn = sub.add_parser("synthesize", help="synthesize an optimal architecture")
    common(p_syn)
    p_syn.set_defaults(func=cmd_synthesize)

    p_an = sub.add_parser("analyze", help="synthesize and report reliability detail")
    common(p_an)
    p_an.set_defaults(func=cmd_analyze)

    p_sc = sub.add_parser("scaling", help="Table II style scaling sweep")
    common(p_sc)
    p_sc.add_argument("--sizes", type=lambda s: [int(x) for x in s.split(",")],
                      default=[20, 30])
    p_sc.set_defaults(func=cmd_scaling)

    p_to = sub.add_parser("tradeoff", help="requirement sweep + Pareto front")
    common(p_to)
    p_to.add_argument("--levels", type=lambda s: [float(x) for x in s.split(",")],
                      default=[2e-3, 2e-6, 2e-10])
    p_to.set_defaults(func=cmd_tradeoff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
