"""``python -m repro`` — alias for the ``archex`` command line."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
