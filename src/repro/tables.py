"""Shared ASCII table drawing.

Factored out of :mod:`repro.report` so every renderer — batch summaries,
verification findings, profile trees, metrics — draws through one
implementation instead of each growing its own alignment logic.
:mod:`repro.report` re-exports these names for backward compatibility.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_scientific", "section"]


def format_scientific(value: float | None, digits: int = 2) -> str:
    """Compact scientific notation, ``n/a`` for missing values."""
    if value is None:
        return "n/a"
    return f"{value:.{digits}e}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def section(title: str) -> str:
    """A titled separator for benchmark console output."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"
