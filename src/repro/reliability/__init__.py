"""Reliability analysis: exact K-terminal engines and the approximate algebra.

Implements the RELANALYSIS routine of Algorithm 1 (four cross-checking exact
engines plus a Monte-Carlo oracle) and the approximate reliability algebra
of §IV-A (eq. 7 with the Theorem 2 error bound).
"""

from .approx import (
    ApproxReliability,
    approximate_failure,
    approximate_failure_from_link,
    single_path_failure,
    theorem2_bound,
)
from .bdd import BDD
from .bounds import ReliabilityBounds, rare_event_estimate, reliability_bounds
from .events import (
    ReliabilityProblem,
    graph_with_edge_failures,
    path_failure_probability,
    problem_from_architecture,
)
from .exact import (
    bdd_variable_order,
    cross_check,
    failure_probability,
    failure_probability_bdd,
    get_reliability_cache,
    reliability_cache,
    set_reliability_cache,
    sink_failure_probabilities,
    worst_case_failure,
)
from .factoring import failure_probability_factoring
from .fault_tree import (
    BasicEvent,
    FaultTree,
    Gate,
    fault_tree_from_architecture,
    fault_tree_from_problem,
)
from .importance import (
    ComponentImportance,
    importance_measures,
    ranked_importance,
)
from .inclusion_exclusion import connectivity_probability_ie, failure_probability_ie
from .mission import MissionReliability, mission_reliability, rate_to_probability
from .montecarlo import MonteCarloEstimate, failure_probability_mc
from .pathsets import minimal_cut_sets, minimal_path_sets
from .polynomial import (
    FailurePolynomial,
    failure_polynomial,
    failure_probability_polynomial,
)
from .registry import (
    EngineInfo,
    applicable_exact_engines,
    engine_info,
    engine_names,
    exact_engine_names,
    inapplicable_reason,
    register_engine,
    run_engine,
)
from .sdp import connectivity_probability_sdp, failure_probability_sdp

__all__ = [
    "ApproxReliability",
    "BDD",
    "BasicEvent",
    "EngineInfo",
    "FaultTree",
    "Gate",
    "ComponentImportance",
    "FailurePolynomial",
    "applicable_exact_engines",
    "engine_info",
    "engine_names",
    "exact_engine_names",
    "failure_probability_polynomial",
    "inapplicable_reason",
    "register_engine",
    "run_engine",
    "MissionReliability",
    "MonteCarloEstimate",
    "ReliabilityBounds",
    "ReliabilityProblem",
    "approximate_failure",
    "approximate_failure_from_link",
    "bdd_variable_order",
    "connectivity_probability_ie",
    "connectivity_probability_sdp",
    "cross_check",
    "failure_probability",
    "failure_probability_bdd",
    "failure_probability_factoring",
    "failure_probability_ie",
    "failure_probability_mc",
    "failure_probability_sdp",
    "fault_tree_from_architecture",
    "fault_tree_from_problem",
    "failure_polynomial",
    "graph_with_edge_failures",
    "importance_measures",
    "minimal_cut_sets",
    "minimal_path_sets",
    "mission_reliability",
    "path_failure_probability",
    "problem_from_architecture",
    "ranked_importance",
    "get_reliability_cache",
    "reliability_cache",
    "set_reliability_cache",
    "rare_event_estimate",
    "reliability_bounds",
    "rate_to_probability",
    "single_path_failure",
    "sink_failure_probabilities",
    "theorem2_bound",
    "worst_case_failure",
]
