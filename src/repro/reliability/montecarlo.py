"""Monte-Carlo estimation of sink failure probability.

A vectorized sampler used as a statistical oracle in tests and for quick
what-if exploration: draw component up/down states, propagate reachability
from the sources with boolean matrix products, count samples where the sink
is unreachable. Exact engines are cross-checked against the resulting
confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .events import ReliabilityProblem

__all__ = ["MonteCarloEstimate", "failure_probability_mc"]


@dataclass
class MonteCarloEstimate:
    """Point estimate with a normal-approximation confidence interval."""

    estimate: float
    stderr: float
    samples: int
    failures: int

    def interval(self, z: float = 3.0) -> Tuple[float, float]:
        lo = max(0.0, self.estimate - z * self.stderr)
        hi = min(1.0, self.estimate + z * self.stderr)
        return (lo, hi)

    def contains(self, value: float, z: float = 4.0) -> bool:
        lo, hi = self.interval(z)
        # Guard band for tiny probabilities where stderr underestimates.
        slack = 10.0 / self.samples
        return lo - slack <= value <= hi + slack


def failure_probability_mc(
    problem: ReliabilityProblem,
    samples: int = 100_000,
    seed: int = 0,
    batch: int = 20_000,
    rng: Optional[np.random.Generator] = None,
) -> MonteCarloEstimate:
    """Estimate ``r_i`` by direct sampling.

    Reachability per sample is computed by iterating
    ``reach <- (reach @ A) & up`` to a fixpoint, fully vectorized over the
    batch dimension.

    Randomness is fully caller-controlled: pass ``rng`` (an explicit
    ``numpy.random.Generator``, e.g. one stream per parallel worker from a
    ``SeedSequence.spawn``) or ``seed``, from which a fresh generator is
    derived. No global RNG state is read or mutated, so concurrent
    workers with distinct seeds produce independent, reproducible
    estimates.
    """
    restricted = problem.restricted()
    graph = restricted.graph
    nodes = sorted(graph.nodes)
    index = {n: i for i, n in enumerate(nodes)}
    n = len(nodes)
    if restricted.sink not in index or not restricted.sources:
        return MonteCarloEstimate(1.0, 0.0, samples, samples)

    p = np.array([float(graph.nodes[node]["p"]) for node in nodes])
    adj = np.zeros((n, n), dtype=bool)
    for u, v in graph.edges:
        adj[index[u], index[v]] = True
    source_mask = np.zeros(n, dtype=bool)
    for s in restricted.sources:
        source_mask[index[s]] = True
    sink_idx = index[restricted.sink]

    if rng is None:
        rng = np.random.default_rng(seed)
    failures = 0
    remaining = samples
    while remaining > 0:
        size = min(batch, remaining)
        remaining -= size
        up = rng.random((size, n)) >= p  # True = component working
        reach = up & source_mask  # working sources are reached
        # Propagate: at most n steps reach the fixpoint.
        for _ in range(n):
            grown = reach | ((reach @ adj) & up)
            if np.array_equal(grown, reach):
                break
            reach = grown
        failures += int(np.count_nonzero(~reach[:, sink_idx]))

    estimate = failures / samples
    stderr = math.sqrt(max(estimate * (1.0 - estimate), 1e-300) / samples)
    return MonteCarloEstimate(estimate, stderr, samples, failures)
