"""Failure model and reliability problem definition (§II of the paper).

The paper's failure semantics: every component ``i`` fails independently
with probability ``p_i`` (event ``P_i``); a failed component cannot be
recovered and its adjacent links become unusable; the *system failure*
``R_i`` at sink ``i`` (eq. 5) is the event that no all-working directed path
connects any source to the sink — including the sink's own failure
(Example 1 includes ``p_L``).

Edges may also carry failure probabilities (the general library of §II
permits it); :func:`graph_with_edge_failures` reduces edge failures to node
failures by splicing a virtual node into each unreliable edge, so all the
exact engines only ever reason about node failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = [
    "ReliabilityProblem",
    "graph_with_edge_failures",
    "path_failure_probability",
    "problem_from_architecture",
]


@dataclass
class ReliabilityProblem:
    """K-terminal (here: any-source-to-one-sink) reliability instance.

    Attributes
    ----------
    graph:
        Directed graph; each node must carry a ``p`` attribute — its
        self-induced failure probability.
    sources:
        Nodes in the source partition ``Pi_1``.
    sink:
        The sink whose failure event ``R_i`` is quantified.
    """

    graph: nx.DiGraph
    sources: Tuple[str, ...]
    sink: str

    def __post_init__(self) -> None:
        self.sources = tuple(sorted(self.sources))
        for node in self.graph.nodes:
            p = self.graph.nodes[node].get("p")
            if p is None:
                raise ValueError(f"node {node!r} is missing failure probability 'p'")
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"node {node!r}: p={p} outside [0, 1]")
        if self.sink not in self.graph:
            raise ValueError(f"sink {self.sink!r} not in graph")

    def failure_prob(self, node: str) -> float:
        return float(self.graph.nodes[node]["p"])

    def relevant_subgraph(self) -> nx.DiGraph:
        """Restrict to nodes on some source->sink path (ancestors of the sink
        intersected with descendants of any source). Irrelevant nodes cannot
        influence the failure event and are dropped before analysis."""
        if self.sink not in self.graph:
            return nx.DiGraph()
        ancestors = nx.ancestors(self.graph, self.sink) | {self.sink}
        descendants = set()
        for s in self.sources:
            if s in self.graph:
                descendants |= nx.descendants(self.graph, s) | {s}
        keep = ancestors & descendants
        return self.graph.subgraph(keep).copy()

    def restricted(self) -> "ReliabilityProblem":
        sub = self.relevant_subgraph()
        sources = tuple(s for s in self.sources if s in sub)
        if self.sink not in sub:
            # Disconnected instance: keep the bare sink so engines can
            # report certain failure.
            sub = nx.DiGraph()
            sub.add_node(self.sink, **self.graph.nodes[self.sink])
        return ReliabilityProblem(sub, sources, self.sink)


def graph_with_edge_failures(graph: nx.DiGraph) -> nx.DiGraph:
    """Splice a virtual node into every edge carrying a nonzero ``p``.

    The returned graph has only perfect edges; each unreliable edge
    ``u -> v`` with probability ``q`` becomes ``u -> u@v -> v`` where the
    virtual node ``u@v`` fails with probability ``q``.
    """
    out = nx.DiGraph()
    out.add_nodes_from(graph.nodes(data=True))
    for u, v, data in graph.edges(data=True):
        q = float(data.get("p", 0.0))
        if q <= 0.0:
            out.add_edge(u, v)
        else:
            virtual = f"{u}@{v}"
            if virtual in out:
                raise ValueError(f"virtual node name collision for edge {u}->{v}")
            out.add_node(virtual, p=q, ctype="contactor")
            out.add_edge(u, virtual)
            out.add_edge(virtual, v)
    return out


def path_failure_probability(graph: nx.DiGraph, path: Sequence[str]) -> float:
    """``rho``: probability that at least one component on the path fails.

    Used by ESTPATH in LEARNCONS (§III-A): with Table I values a
    generator-to-load path gives ``rho ~= 8e-4``.
    """
    up = 1.0
    for node in path:
        up *= 1.0 - float(graph.nodes[node]["p"])
    return 1.0 - up


def problem_from_architecture(arch, sink: str) -> ReliabilityProblem:
    """Build a reliability problem from an :class:`repro.arch.Architecture`.

    Uses the expanded graph (same-type sibling shorthand resolved) and the
    architecture's used sources.
    """
    graph = arch.expanded_graph()
    if any(data.get("p", 0.0) > 0.0 for _, _, data in graph.edges(data=True)):
        graph = graph_with_edge_failures(graph)
    sources = tuple(s for s in arch.source_names() if s in graph)
    if sink not in graph:
        g = nx.DiGraph()
        spec = arch.template.spec(arch.template.index_of(sink))
        g.add_node(sink, p=spec.failure_prob, ctype=spec.ctype)
        return ReliabilityProblem(g, (), sink)
    return ReliabilityProblem(graph, sources, sink)
