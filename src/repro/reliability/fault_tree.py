"""Fault trees and the architecture -> fault tree bridge.

The paper's introduction contrasts its structure-based reliability
evaluation with classical Fault Tree Analysis: "in FTA, decomposition into
modules mostly relates to the hierarchy of failure influences rather than
to the actual system architecture. Therefore, the integration of fault
trees with other system design models is not directly possible."

This module provides both sides of that comparison:

* a small FTA engine — basic events, AND/OR/k-of-n gates, exact top-event
  probability via BDD compilation, minimal cut set extraction;
* :func:`fault_tree_from_architecture` — the *compositional* bridge the
  paper advocates (after Kaiser et al.): the sink-failure event of eq. 5
  unrolled into a gate hierarchy that mirrors the architecture structure
  (component fails OR all predecessor feeds fail), so safety engineers get
  a reviewable FTA artifact that is provably consistent with the graph
  model — the test suite checks its top-event probability equals the
  K-terminal engines' result exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from .bdd import BDD
from .events import ReliabilityProblem

__all__ = [
    "BasicEvent",
    "Gate",
    "FaultTree",
    "fault_tree_from_architecture",
    "fault_tree_from_problem",
]


@dataclass(frozen=True)
class BasicEvent:
    """A leaf failure event with its probability."""

    name: str
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"{self.name}: probability {self.probability}")


@dataclass(frozen=True)
class Gate:
    """An internal node: ``kind`` in {"and", "or", "k_of_n"}.

    ``k`` is only meaningful for ``k_of_n`` (the gate fires when at least
    ``k`` inputs fire).
    """

    name: str
    kind: str
    inputs: Tuple[str, ...]
    k: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("and", "or", "k_of_n"):
            raise ValueError(f"unknown gate kind {self.kind!r}")
        if not self.inputs:
            raise ValueError(f"gate {self.name!r} has no inputs")
        if self.kind == "k_of_n" and not 1 <= self.k <= len(self.inputs):
            raise ValueError(f"gate {self.name!r}: invalid k={self.k}")


class FaultTree:
    """A fault tree: events + gates + a designated top event."""

    def __init__(self) -> None:
        self.events: Dict[str, BasicEvent] = {}
        self.gates: Dict[str, Gate] = {}
        self.top: Optional[str] = None

    # -- construction -------------------------------------------------------

    def add_event(self, name: str, probability: float) -> BasicEvent:
        if name in self.events or name in self.gates:
            raise ValueError(f"duplicate node name {name!r}")
        event = BasicEvent(name, probability)
        self.events[name] = event
        return event

    def add_gate(self, name: str, kind: str, inputs: Sequence[str], k: int = 0) -> Gate:
        if name in self.events or name in self.gates:
            raise ValueError(f"duplicate node name {name!r}")
        gate = Gate(name, kind, tuple(inputs), k)
        self.gates[name] = gate
        return gate

    def set_top(self, name: str) -> None:
        if name not in self.gates and name not in self.events:
            raise KeyError(f"unknown node {name!r}")
        self.top = name

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check referential integrity and acyclicity."""
        if self.top is None:
            raise ValueError("fault tree has no top event")
        graph = nx.DiGraph()
        for gate in self.gates.values():
            for inp in gate.inputs:
                if inp not in self.gates and inp not in self.events:
                    raise ValueError(
                        f"gate {gate.name!r} references unknown node {inp!r}"
                    )
                graph.add_edge(gate.name, inp)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError("fault tree contains a cycle")

    # -- compilation ----------------------------------------------------------

    def _compile(self) -> Tuple[BDD, int]:
        self.validate()
        order = sorted(self.events)
        bdd = BDD(order)
        memo: Dict[str, int] = {}

        def build(name: str) -> int:
            hit = memo.get(name)
            if hit is not None:
                return hit
            if name in self.events:
                node = bdd.var(name)
            else:
                gate = self.gates[name]
                children = [build(inp) for inp in gate.inputs]
                if gate.kind == "and":
                    node = children[0]
                    for child in children[1:]:
                        node = bdd.apply("and", node, child)
                elif gate.kind == "or":
                    node = children[0]
                    for child in children[1:]:
                        node = bdd.apply("or", node, child)
                else:  # k_of_n: OR over AND-combinations of size k
                    node = 0
                    for combo in itertools.combinations(children, gate.k):
                        term = combo[0]
                        for child in combo[1:]:
                            term = bdd.apply("and", term, child)
                        node = bdd.apply("or", node, term)
            memo[name] = node
            return node

        return bdd, build(self.top)

    def top_event_probability(self) -> float:
        """Exact probability of the top event (BDD evaluation).

        BDD variables represent the basic events *occurring*, so the "true"
        branch carries the event probability.
        """
        bdd, root = self._compile()
        occur = {name: ev.probability for name, ev in self.events.items()}
        return bdd.prob_one(root, occur)

    def minimal_cut_sets(self) -> List[FrozenSet[str]]:
        """Minimal sets of basic events whose joint occurrence fires the top.

        Extracted from the compiled BDD by enumerating satisfying prime-ish
        paths and minimizing; exact for the monotone (coherent) trees this
        package builds.
        """
        bdd, root = self._compile()
        cuts: Set[FrozenSet[str]] = set()

        def walk(node: int, chosen: FrozenSet[str]) -> None:
            if node == 1:
                cuts.add(chosen)
                return
            if node == 0:
                return
            level, low, high = bdd.nodes[node]
            name = bdd.order[level]
            walk(high, chosen | {name})
            walk(low, chosen)

        walk(root, frozenset())
        minimal = [c for c in cuts if not any(other < c for other in cuts)]
        minimal.sort(key=lambda s: (len(s), tuple(sorted(s))))
        return minimal

    def __repr__(self) -> str:
        return (
            f"FaultTree(events={len(self.events)}, gates={len(self.gates)}, "
            f"top={self.top!r})"
        )


def fault_tree_from_problem(problem: ReliabilityProblem) -> FaultTree:
    """Unroll eq. 5 into a fault tree for the problem's sink.

    ``R_i = P_i OR (AND over predecessors j of R_j)`` — evaluated on the
    relevant subgraph. Cycles cannot occur on the relevant subgraph of the
    layered architectures this package builds; shared subtrees become
    shared gates (a DAG-shaped tree, as FTA tools allow).
    """
    restricted = problem.restricted()
    graph = restricted.graph
    sink = restricted.sink
    sources = set(restricted.sources)

    tree = FaultTree()
    for node in sorted(graph.nodes):
        tree.add_event(f"fail[{node}]", restricted.failure_prob(node))

    if not sources:
        # Disconnected: the sink fails with certainty; encode TRUE via an
        # always-occurring pseudo event.
        tree.add_event("disconnected", 1.0)
        tree.add_gate("top", "or", ["disconnected"])
        tree.set_top("top")
        return tree

    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError(
            "eq. 5 unrolling requires an acyclic relevant subgraph; "
            "expand sibling shorthand before building the fault tree"
        )

    memo: Dict[str, str] = {}

    def system_failure(node: str) -> str:
        """Name of the gate/event for R_node."""
        hit = memo.get(node)
        if hit is not None:
            return hit
        own = f"fail[{node}]"
        if node in sources:
            memo[node] = own
            return own
        preds = sorted(graph.predecessors(node))
        if not preds:
            memo[node] = own  # unreachable: but relevant subgraph avoids this
            return own
        feed_inputs = [system_failure(p) for p in preds]
        if len(feed_inputs) == 1:
            feeds = feed_inputs[0]
        else:
            feeds = f"feeds_lost[{node}]"
            tree.add_gate(feeds, "and", feed_inputs)
        gate = f"R[{node}]"
        tree.add_gate(gate, "or", [own, feeds])
        memo[node] = gate
        return gate

    top = system_failure(sink)
    tree.set_top(top)
    return tree


def fault_tree_from_architecture(arch, sink: str) -> FaultTree:
    """Fault tree of a sink's failure event on an architecture."""
    from .events import problem_from_architecture

    return fault_tree_from_problem(problem_from_architecture(arch, sink))
