"""Exact reliability by Sum of Disjoint Products (Abraham's algorithm).

The connectivity event ``union_i E_i`` (``E_i`` = "all nodes of path set i
work") is rewritten as a union of *disjoint* products, whose probabilities
then simply add up:

``P(union E_i) = sum_i P(E_i and not E_1 and ... and not E_{i-1})``

Each term is expanded into disjoint products by single-variable inversion:
to intersect a product with ``not E_j``, pick the nodes ``D = E_j \\ up``
that the product leaves free and split into ``|D|`` disjoint cases ("first
of D down", "first up and second down", ...).

Polynomially bounded per term in the number of free variables but still
worst-case exponential overall — like every exact method (the problem is
NP-hard [Lucet & Manouvrier]); in practice far fewer terms than
inclusion-exclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from .. import obs
from .events import ReliabilityProblem
from .pathsets import minimal_path_sets

__all__ = ["failure_probability_sdp", "connectivity_probability_sdp"]


@dataclass(frozen=True)
class _Product:
    """A conjunction of literals: ``up`` nodes working, ``down`` nodes failed."""

    up: FrozenSet[str]
    down: FrozenSet[str]


def _intersect_not(products: List[_Product], path: FrozenSet[str]) -> List[_Product]:
    """Intersect each product with ``not (all of path up)``, disjointly."""
    out: List[_Product] = []
    for prod in products:
        if prod.down & path:
            # Some node of the path is already down: not-E_j already holds.
            out.append(prod)
            continue
        free = sorted(path - prod.up)
        if not free:
            # Product forces the whole path up: contradicts not-E_j; drop.
            continue
        fixed_up: List[str] = []
        for node in free:
            out.append(
                _Product(
                    up=prod.up | frozenset(fixed_up),
                    down=prod.down | frozenset([node]),
                )
            )
            fixed_up.append(node)
    return out


def connectivity_probability_sdp(problem: ReliabilityProblem) -> float:
    paths = minimal_path_sets(problem)
    if obs.enabled():
        obs.set_attr("path_count", len(paths))
    if not paths:
        return 0.0
    up_prob = {n: 1.0 - problem.failure_prob(n) for s in paths for n in s}

    total = 0.0
    for i, path in enumerate(paths):
        products = [_Product(up=path, down=frozenset())]
        for prior in paths[:i]:
            products = _intersect_not(products, prior)
            if not products:
                break
        for prod in products:
            prob = 1.0
            for node in prod.up:
                prob *= up_prob[node]
            for node in prod.down:
                prob *= 1.0 - up_prob[node]
            total += prob
    return min(max(total, 0.0), 1.0)


def failure_probability_sdp(problem: ReliabilityProblem) -> float:
    """``r_i = 1 - P(connected)`` via sum of disjoint products."""
    return 1.0 - connectivity_probability_sdp(problem)
