"""Engine registry: uniform enumeration of the reliability engines.

The repo ships several independent implementations of the same number —
the K-terminal failure probability of eq. 5 — plus a Monte-Carlo
statistical oracle. The differential verification harness
(:mod:`repro.verify`) needs to enumerate them *uniformly*: which engines
exist, which are exact, and which are applicable to a given
:class:`ReliabilityProblem` (inclusion-exclusion caps the number of path
sets, the polynomial engine requires a uniform ``p``).

This module is that capability shim. Every registered exact engine is
also inserted into :data:`repro.reliability.exact._ENGINES`, so it
becomes selectable through the ordinary
``failure_probability(..., method=name)`` front-end (and therefore
cacheable) with no further wiring. :func:`run_engine` resolves the
callable through ``exact._ENGINES`` at call time, so tests that
monkeypatch an engine there are seen by the verifier too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .. import obs
from . import exact
from .events import ReliabilityProblem
from .inclusion_exclusion import _MAX_PATHS
from .pathsets import minimal_path_sets
from .polynomial import failure_probability_polynomial, uniform_failure_prob

__all__ = [
    "EngineInfo",
    "register_engine",
    "engine_info",
    "engine_names",
    "exact_engine_names",
    "applicable_exact_engines",
    "inapplicable_reason",
    "run_engine",
]


@dataclass(frozen=True)
class EngineInfo:
    """One registered reliability engine.

    ``applicability`` returns ``None`` when the engine can analyze the
    problem, or a human-readable reason when it cannot (the verifier
    reports skipped engines rather than failing on them).
    """

    name: str
    fn: Callable[[ReliabilityProblem], float]
    exact: bool = True
    applicability: Optional[Callable[[ReliabilityProblem], Optional[str]]] = None

    def why_inapplicable(self, problem: ReliabilityProblem) -> Optional[str]:
        if self.applicability is None:
            return None
        return self.applicability(problem)


_REGISTRY: Dict[str, EngineInfo] = {}


def register_engine(info: EngineInfo) -> EngineInfo:
    """Register ``info``; exact engines also join ``failure_probability``."""
    _REGISTRY[info.name] = info
    if info.exact:
        exact._ENGINES.setdefault(info.name, info.fn)
    return info


def engine_info(name: str) -> EngineInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown reliability engine {name!r}") from None


def engine_names() -> List[str]:
    """All registered engine names, in registration order."""
    return list(_REGISTRY)


def exact_engine_names() -> List[str]:
    return [name for name, info in _REGISTRY.items() if info.exact]


def inapplicable_reason(name: str, problem: ReliabilityProblem) -> Optional[str]:
    """Why ``name`` cannot analyze ``problem`` (``None`` when it can)."""
    return engine_info(name).why_inapplicable(problem)


def applicable_exact_engines(problem: ReliabilityProblem) -> List[str]:
    """Exact engines able to analyze ``problem``, in registration order."""
    return [
        name
        for name in exact_engine_names()
        if engine_info(name).why_inapplicable(problem) is None
    ]


def run_engine(name: str, problem: ReliabilityProblem) -> float:
    """Invoke one engine directly — no cache in front.

    The verifier must observe the engine's own answer, not a previously
    cached value; exact engines resolve through ``exact._ENGINES`` so a
    monkeypatched (deliberately broken) engine is exercised too.

    When tracing is on, each invocation records a
    ``reliability.engine`` span (with the restricted problem's size and
    any engine-specific attributes like BDD node count) and bumps the
    per-engine call-count / wall-time metrics.
    """
    info = engine_info(name)
    fn = exact._ENGINES.get(name, info.fn) if info.exact else info.fn
    if not obs.enabled():
        return fn(problem)
    restricted = problem.restricted()
    with obs.span(
        "reliability.engine",
        engine=name,
        nodes=restricted.graph.number_of_nodes(),
        edges=restricted.graph.number_of_edges(),
    ) as s:
        start = time.perf_counter()
        value = fn(problem)
        elapsed = time.perf_counter() - start
        s.set_attr("value", value)
    obs.counter(f"reliability.engine.{name}.calls").inc()
    obs.histogram(f"reliability.engine.{name}.seconds").observe(elapsed)
    return value


# ---------------------------------------------------------------------------
# Built-in engines


def _ie_applicability(problem: ReliabilityProblem) -> Optional[str]:
    paths = minimal_path_sets(problem.restricted())
    if len(paths) > _MAX_PATHS:
        return f"{len(paths)} path sets exceed the {_MAX_PATHS}-path IE limit"
    return None


def _polynomial_applicability(problem: ReliabilityProblem) -> Optional[str]:
    try:
        uniform_failure_prob(problem)
    except ValueError:
        return "component failure probabilities are not uniform"
    return None


for _name in ("bdd", "factoring", "sdp"):
    register_engine(EngineInfo(name=_name, fn=exact._ENGINES[_name]))
register_engine(
    EngineInfo(name="ie", fn=exact._ENGINES["ie"], applicability=_ie_applicability)
)
register_engine(
    EngineInfo(
        name="polynomial",
        fn=failure_probability_polynomial,
        applicability=_polynomial_applicability,
    )
)


def _mc_fn(problem: ReliabilityProblem) -> float:
    from .montecarlo import failure_probability_mc

    return failure_probability_mc(problem).estimate


register_engine(EngineInfo(name="mc", fn=_mc_fn, exact=False))
