"""Front-end for exact reliability analysis (the paper's RELANALYSIS).

``failure_probability`` computes the probability of the system failure
event ``R_i`` of eq. 5 — the sink disconnected from every source — with a
choice of exact engine:

``"bdd"`` (default)
    Minimal path sets compiled to an ROBDD, failure probability read off the
    0-terminal (no subtractive cancellation; exact at r ~ 1e-11 and below).
``"factoring"``
    Shannon factoring on the graph with relevance reduction.
``"sdp"``
    Abraham's sum of disjoint products over minimal path sets.
``"ie"``
    Inclusion-exclusion oracle (small instances only).

The paper notes "any other exact reliability analysis method can also be
used" — all four agree to within floating-point rounding, and the test
suite enforces that.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from .. import obs
from .bdd import BDD
from .events import ReliabilityProblem, problem_from_architecture
from .factoring import failure_probability_factoring
from .inclusion_exclusion import failure_probability_ie
from .pathsets import minimal_path_sets
from .sdp import failure_probability_sdp

__all__ = [
    "failure_probability",
    "failure_probability_bdd",
    "sink_failure_probabilities",
    "worst_case_failure",
    "cross_check",
    "bdd_variable_order",
    "set_reliability_cache",
    "get_reliability_cache",
    "reliability_cache",
]


def bdd_variable_order(problem: ReliabilityProblem) -> List[str]:
    """Variable order for the connectivity BDD.

    Orders components by (shortest hop distance to the sink, name): nodes
    close to the sink sit near the root. On layered architectures this keeps
    the BDD within a few nodes per layer crossing.
    """
    restricted = problem.restricted()
    graph = restricted.graph
    if restricted.sink not in graph:
        return sorted(graph.nodes)
    reverse = graph.reverse(copy=False)
    dist = nx.single_source_shortest_path_length(reverse, restricted.sink)
    return sorted(graph.nodes, key=lambda n: (dist.get(n, len(graph)), n))


def failure_probability_bdd(problem: ReliabilityProblem) -> float:
    restricted = problem.restricted()
    paths = minimal_path_sets(restricted)
    if not paths:
        return 1.0
    order = bdd_variable_order(restricted)
    bdd = BDD(order)
    root = bdd.from_path_sets(paths)
    if obs.enabled():  # engine-size attributes for the active span, if any
        obs.set_attr("path_count", len(paths))
        obs.set_attr("bdd_nodes", bdd.size(root))
    up_prob = {
        n: 1.0 - restricted.failure_prob(n) for n in restricted.graph.nodes
    }
    return bdd.prob_zero(root, up_prob)


_ENGINES: Dict[str, Callable[[ReliabilityProblem], float]] = {
    "bdd": failure_probability_bdd,
    "factoring": failure_probability_factoring,
    "sdp": failure_probability_sdp,
    "ie": failure_probability_ie,
}

#: Optional cache consulted by :func:`failure_probability`. Any object with
#: ``lookup(problem, method) -> Optional[float]`` and ``store(problem,
#: method, value)`` qualifies; :class:`repro.engine.ReliabilityCache` is the
#: persistent implementation. Installed per process (sweep workers install
#: their own in the pool initializer).
_ACTIVE_CACHE = None


def set_reliability_cache(cache):
    """Install ``cache`` beneath :func:`failure_probability`.

    Returns the previously installed cache (or ``None``) so callers can
    restore it; pass ``None`` to uninstall.
    """
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    return previous


def get_reliability_cache():
    """The cache currently consulted by :func:`failure_probability`."""
    return _ACTIVE_CACHE


@contextmanager
def reliability_cache(cache):
    """Scoped :func:`set_reliability_cache` — restores the previous cache."""
    previous = set_reliability_cache(cache)
    try:
        yield cache
    finally:
        set_reliability_cache(previous)


def failure_probability(
    target,
    sink: Optional[str] = None,
    method: str = "bdd",
) -> float:
    """Failure probability of a sink.

    ``target`` is either a :class:`ReliabilityProblem` or an
    :class:`repro.arch.Architecture` (in which case ``sink`` is required and
    the expanded graph is analyzed).
    """
    if isinstance(target, ReliabilityProblem):
        problem = target
    else:
        if sink is None:
            raise ValueError("sink is required when analyzing an architecture")
        problem = problem_from_architecture(target, sink)
    try:
        engine = _ENGINES[method]
    except KeyError:
        raise ValueError(f"unknown reliability method {method!r}") from None
    cache = _ACTIVE_CACHE
    traced = obs.enabled()
    with obs.span("reliability.analysis", method=method) as s:
        if cache is not None:
            cached = cache.lookup(problem, method)
            if cached is not None:
                s.set_attr("cached", True)
                if traced:
                    obs.counter("reliability.analysis.cache_hits").inc()
                return cached
        start = time.perf_counter()
        value = engine(problem)
        if cache is not None:
            cache.store(problem, method, value)
        s.set_attr("cached", False)
        if traced:
            obs.counter(f"reliability.analysis.{method}.calls").inc()
            obs.histogram(f"reliability.analysis.{method}.seconds").observe(
                time.perf_counter() - start
            )
    return value


def sink_failure_probabilities(
    arch,
    sinks: Optional[Iterable[str]] = None,
    method: str = "bdd",
) -> Dict[str, float]:
    """``r_i`` for each sink of interest of an architecture."""
    names = list(sinks) if sinks is not None else arch.sink_names()
    return {s: failure_probability(arch, sink=s, method=method) for s in names}


def worst_case_failure(
    arch,
    sinks: Optional[Iterable[str]] = None,
    method: str = "bdd",
) -> Tuple[float, str]:
    """The worst-case ``r`` over the sinks of interest (Algorithm 1's r)."""
    probs = sink_failure_probabilities(arch, sinks, method)
    if not probs:
        raise ValueError("architecture has no sinks to analyze")
    sink = max(probs, key=lambda s: (probs[s], s))
    return probs[sink], sink


def cross_check(
    problem: ReliabilityProblem,
    methods: Iterable[str] = ("bdd", "factoring", "sdp"),
    tol: float = 1e-9,
) -> Dict[str, float]:
    """Run several exact engines and assert they agree within ``tol``.

    Engines that declare themselves inapplicable to the problem (via the
    registry's ``why_inapplicable`` probes — e.g. the inclusion-exclusion
    oracle's path-set cap) are skipped rather than crashing the check;
    the remaining applicable engines are still compared pairwise.

    Returns the per-engine values; raises AssertionError on disagreement.
    """
    from .registry import inapplicable_reason

    values = {}
    for m in methods:
        try:
            skip = inapplicable_reason(m, problem)
        except KeyError:
            skip = None
        if skip is None:
            values[m] = _ENGINES[m](problem)
    items = sorted(values.items())
    for (name_a, val_a), (name_b, val_b) in zip(items, items[1:]):
        if abs(val_a - val_b) > tol * max(1.0, abs(val_a)):
            raise AssertionError(
                f"exact engines disagree: {name_a}={val_a!r} vs {name_b}={val_b!r}"
            )
    return values
