"""Approximate reliability algebra (§IV-A of the paper).

For a functional link ``F_i``, the failure probability is approximated by

    r~_i = sum_{j in I_i} h_ij * p_j ** h_ij                       (eq. 7)

where ``I_i`` is the set of component types that *jointly implement* the
link (every path crosses the type — a type-level cut set), ``h_ij`` is the
type's *degree of redundancy* (distinct components of the type used on
reduced paths), and ``p_j`` the type failure probability.

Theorem 2 bounds the optimism:  ``r~ / r >= m * f / M_f`` with ``m = |I|``,
``f = |F|`` and ``M_f = prod_paths |mu|``. We interpret ``|mu|`` as the node
count of the path, which is the reading consistent with Example 1 (see
EXPERIMENTS.md); the property-based test suite checks the bound on random
architectures under this interpretation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch.paths import FunctionalLink, functional_link
from .events import problem_from_architecture

__all__ = [
    "ApproxReliability",
    "approximate_failure",
    "approximate_failure_from_link",
    "theorem2_bound",
    "single_path_failure",
]


@dataclass
class ApproxReliability:
    """Result of evaluating eq. 7 on one functional link."""

    sink: str
    r_tilde: float
    redundancy: Dict[str, int]  # h_ij per jointly implementing type j
    type_probs: Dict[str, float]  # p_j per type
    num_paths: int  # f = |F|
    bound_ratio: float  # m * f / M_f of Theorem 2

    @property
    def jointly_implementing(self) -> List[str]:
        return sorted(self.redundancy)

    def term(self, ctype: str) -> float:
        """Contribution ``h * p^h`` of a single type."""
        h = self.redundancy[ctype]
        p = self.type_probs[ctype]
        return h * p**h

    def guaranteed_upper_bound(self, r_exact: float) -> bool:
        """Check Theorem 2 against an exactly computed ``r``."""
        if r_exact == 0.0:
            return True
        return self.r_tilde / r_exact >= self.bound_ratio - 1e-12


def theorem2_bound(link: FunctionalLink) -> float:
    """``m * f / M_f`` — the worst-case optimism ratio of eq. 8."""
    if not link.paths:
        return 0.0
    m = len(link.jointly_implementing_types())
    f = link.num_paths
    big_m = 1.0
    for path in link.paths:
        big_m *= len(path)
    return m * f / big_m


def approximate_failure_from_link(
    link: FunctionalLink, type_probs: Dict[str, float]
) -> ApproxReliability:
    """Evaluate eq. 7 given a functional link and per-type probabilities."""
    redundancy = link.redundancy_profile()
    r_tilde = 0.0
    probs: Dict[str, float] = {}
    for ctype, h in redundancy.items():
        p = type_probs.get(ctype, 0.0)
        probs[ctype] = p
        r_tilde += h * p**h
    return ApproxReliability(
        sink=link.sink,
        r_tilde=r_tilde,
        redundancy=redundancy,
        type_probs=probs,
        num_paths=link.num_paths,
        bound_ratio=theorem2_bound(link),
    )


def approximate_failure(arch, sink: str) -> ApproxReliability:
    """Evaluate eq. 7 on an architecture's functional link to ``sink``.

    The per-type probability ``p_j`` is the maximum failure probability of
    the type's components appearing on the link (the paper assumes instances
    of a type share one probability; the max keeps mixed libraries
    conservative).
    """
    problem = problem_from_architecture(arch, sink)
    link = functional_link(problem.graph, list(problem.sources), sink)
    type_probs: Dict[str, float] = {}
    for node in link.nodes():
        ctype = link.type_of[node]
        p = float(problem.graph.nodes[node]["p"])
        type_probs[ctype] = max(type_probs.get(ctype, 0.0), p)
    if not link.paths:
        # Disconnected sink: certain failure; the algebra degenerates.
        return ApproxReliability(
            sink=sink,
            r_tilde=1.0,
            redundancy={},
            type_probs={},
            num_paths=0,
            bound_ratio=0.0,
        )
    return approximate_failure_from_link(link, type_probs)


def _shortest_path(paths) -> tuple:
    """The canonical shortest path: ties broken on the node-name tuple.

    ``min(..., key=len)`` alone would break length ties by list position,
    making ESTPATH's ``rho`` — and hence learned constraints and ILP-MR
    iteration counts — depend on the path enumeration order. The
    lexicographic tie-break makes the choice a function of the path *set*.
    """
    return min(paths, key=lambda p: (len(p), p))


def single_path_failure(arch, sink: str) -> float:
    """``rho``: failure probability of one (shortest) source->sink path.

    LEARNCONS's ESTPATH uses this to estimate the number of additional
    redundant paths ``k = floor(log(r*/r) / log(rho))`` (§III-A).
    Deterministic under path-enumeration order: among equal-length
    shortest paths the lexicographically smallest node-name tuple is used.
    """
    problem = problem_from_architecture(arch, sink)
    link = functional_link(problem.graph, list(problem.sources), sink)
    if not link.paths:
        return 1.0
    shortest = _shortest_path(link.paths)
    up = 1.0
    for node in shortest:
        up *= 1.0 - float(problem.graph.nodes[node]["p"])
    return 1.0 - up
