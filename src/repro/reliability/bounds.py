"""Reliability bounds: Esary-Proschan and rare-event cut approximations.

Exact K-terminal reliability is NP-hard; for very large architectures even
the BDD engine eventually runs out of room. The classical bounds give
cheap, certified brackets:

* **Esary-Proschan upper bound on failure**: treating minimal cut sets as
  independent, ``r <= 1 - prod_cuts (1 - prod_{i in cut} p_i)`` — an upper
  bound for coherent systems with independent components;
* **Esary-Proschan lower bound on failure**: dually from the minimal path
  sets, ``r >= prod_paths (1 - prod_{i in path} (1 - p_i))``;
* **rare-event cut sum**: ``r ~ sum_cuts prod p_i`` — not a bound, but the
  first-order estimate practitioners quote; within a factor of the true
  value when ``p`` is small (Bonferroni gives the bracketing).

The test suite checks the bracket ``lower <= r_exact <= upper`` on random
architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .events import ReliabilityProblem
from .pathsets import minimal_cut_sets, minimal_path_sets

__all__ = ["ReliabilityBounds", "reliability_bounds", "rare_event_estimate"]


@dataclass
class ReliabilityBounds:
    """A certified bracket on the sink failure probability."""

    lower: float
    upper: float
    num_path_sets: int
    num_cut_sets: int

    def contains(self, value: float, tol: float = 1e-12) -> bool:
        return self.lower - tol <= value <= self.upper + tol

    @property
    def width(self) -> float:
        return self.upper - self.lower


def reliability_bounds(problem: ReliabilityProblem) -> ReliabilityBounds:
    """Esary-Proschan bracket from minimal path and cut sets."""
    restricted = problem.restricted()
    paths = minimal_path_sets(restricted)
    if not paths:
        return ReliabilityBounds(1.0, 1.0, 0, 0)
    cuts = minimal_cut_sets(restricted)
    p_of = {n: restricted.failure_prob(n) for n in restricted.graph.nodes}

    # Lower bound on failure: product over paths of P(path fails),
    # as if paths failed independently (they share components, which
    # correlates their failures positively -> true r is larger).
    lower = 1.0
    for path in paths:
        up = 1.0
        for node in path:
            up *= 1.0 - p_of[node]
        lower *= 1.0 - up

    # Upper bound on failure: 1 - product over cuts of P(cut survives).
    upper = 1.0
    for cut in cuts:
        all_fail = 1.0
        for node in cut:
            all_fail *= p_of[node]
        upper *= 1.0 - all_fail
    upper = 1.0 - upper

    lower = max(0.0, lower)
    upper = min(1.0, upper)
    # On structures where both bounds are tight (pure series/parallel) the
    # two float computations can cross by an ulp; restore the invariant.
    lower = min(lower, upper)
    return ReliabilityBounds(
        lower=lower,
        upper=upper,
        num_path_sets=len(paths),
        num_cut_sets=len(cuts),
    )


def rare_event_estimate(problem: ReliabilityProblem) -> float:
    """First-order cut-set sum ``sum_cuts prod_{i in cut} p_i``.

    An (over-)estimate that upper-bounds ``r`` by Bonferroni's first
    inequality; tight when all component probabilities are small.
    """
    restricted = problem.restricted()
    if not minimal_path_sets(restricted):
        return 1.0
    p_of = {n: restricted.failure_prob(n) for n in restricted.graph.nodes}
    total = 0.0
    for cut in minimal_cut_sets(restricted):
        term = 1.0
        for node in cut:
            term *= p_of[node]
        total += term
    return min(total, 1.0)
