"""Exact reliability by Shannon factoring on the graph.

The classical factoring (pivotal decomposition) algorithm for K-terminal
reliability: pick an imperfect component ``v`` on some source->sink path and
condition —

``r = p_v * r(G with v failed) + (1 - p_v) * r(G with v perfect)``

with two graph simplifications applied at every step: restriction to the
relevant subgraph (nodes on some source->sink path) and termination when
either the sink is disconnected (failure certain) or a fully perfect path
exists (failure impossible through this conditioning branch... except for
imperfect components elsewhere — handled by the relevance restriction).

Memoized on the canonical (alive nodes, perfect nodes) pair, which lets
redundant EPS architectures with many isomorphic branches fold together.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

import networkx as nx

from .events import ReliabilityProblem

__all__ = ["failure_probability_factoring"]


def failure_probability_factoring(problem: ReliabilityProblem) -> float:
    """``r_i``: probability the sink is cut off from every source (eq. 5)."""
    restricted = problem.restricted()
    graph = restricted.graph
    sources = frozenset(restricted.sources)
    sink = restricted.sink
    p_of = {n: float(graph.nodes[n]["p"]) for n in graph.nodes}
    memo: Dict[Tuple[FrozenSet[str], FrozenSet[str]], float] = {}

    def relevant(alive: FrozenSet[str]) -> FrozenSet[str]:
        sub = graph.subgraph(alive)
        if sink not in sub:
            return frozenset()
        ancestors = nx.ancestors(sub, sink) | {sink}
        descendants: Set[str] = set()
        for s in sources & alive:
            descendants |= nx.descendants(sub, s)
            descendants.add(s)
        return frozenset(ancestors & descendants)

    def perfect_path_exists(alive: FrozenSet[str], perfect: FrozenSet[str]) -> bool:
        """Is there a source->sink path using only perfect nodes?"""
        usable = alive & perfect
        if sink not in usable:
            return False
        sub = graph.subgraph(usable)
        return any(
            s in usable and nx.has_path(sub, s, sink) for s in sources
        )

    def solve(alive: FrozenSet[str], perfect: FrozenSet[str]) -> float:
        alive = relevant(alive)
        if sink not in alive or not (sources & alive):
            return 1.0
        perfect = perfect & alive
        if perfect_path_exists(alive, perfect):
            return 0.0
        key = (alive, perfect)
        hit = memo.get(key)
        if hit is not None:
            return hit

        # Pivot: the imperfect alive node with the largest failure
        # probability (a good heuristic: it splits the probability mass).
        candidates = [n for n in alive if n not in perfect and p_of[n] > 0.0]
        if not candidates:
            # Everything relevant is perfect but no perfect path exists:
            # can only happen when perfection hasn't been propagated; treat
            # connectivity directly.
            value = 0.0 if perfect_path_exists(alive, alive) else 1.0
            memo[key] = value
            return value
        pivot = max(candidates, key=lambda n: (p_of[n], n))
        p = p_of[pivot]
        failed_branch = solve(alive - {pivot}, perfect)
        perfect_branch = solve(alive, perfect | {pivot})
        value = p * failed_branch + (1.0 - p) * perfect_branch
        memo[key] = value
        return value

    all_alive = frozenset(graph.nodes)
    start_perfect = frozenset(n for n in graph.nodes if p_of[n] == 0.0)
    return solve(all_alive, start_perfect)
