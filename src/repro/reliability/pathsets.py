"""Minimal path sets for K-terminal reliability.

A *path set* is the set of nodes on one simple source->sink path; the sink
is connected iff at least one path set is fully working. Dropping
non-minimal sets (supersets of other sets) is sound for coherent systems
and shrinks every downstream engine's input.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple

import networkx as nx

from .events import ReliabilityProblem

__all__ = ["minimal_path_sets", "minimal_cut_sets"]


def minimal_path_sets(problem: ReliabilityProblem, cutoff: int | None = None) -> List[FrozenSet[str]]:
    """Minimal node path sets from any source to the sink, sorted.

    Returns an empty list when the sink is disconnected from every source
    (certain failure). Sets are sorted by (size, sorted members) so all
    engines see a deterministic order.
    """
    restricted = problem.restricted()
    graph = restricted.graph
    sets: set[FrozenSet[str]] = set()
    for source in restricted.sources:
        if source == restricted.sink:
            sets.add(frozenset([source]))
            continue
        if source not in graph:
            continue
        for path in nx.all_simple_paths(graph, source, restricted.sink, cutoff=cutoff):
            sets.add(frozenset(path))
    minimal = [s for s in sets if not any(other < s for other in sets)]
    minimal.sort(key=lambda s: (len(s), tuple(sorted(s))))
    return minimal


def minimal_cut_sets(problem: ReliabilityProblem, max_size: int | None = None) -> List[FrozenSet[str]]:
    """Minimal node cut sets: node subsets whose joint failure disconnects
    the sink from every source.

    Computed by dualizing the minimal path sets (a cut must hit every path
    set), i.e. enumerating minimal hitting sets. ``max_size`` truncates the
    search for large systems; with the default None, the enumeration is
    exact. The sink itself is always a (singleton) cut set when it can fail.
    """
    paths = minimal_path_sets(problem)
    if not paths:
        return [frozenset()]  # already disconnected: the empty cut suffices
    universe = sorted({n for s in paths for n in s})
    limit = max_size if max_size is not None else len(universe)

    cuts: List[FrozenSet[str]] = []

    def extend(partial: Tuple[str, ...], remaining: List[FrozenSet[str]], start: int) -> None:
        if not remaining:
            candidate = frozenset(partial)
            if not any(c <= candidate for c in cuts):
                cuts.append(candidate)
            return
        if len(partial) >= limit:
            return
        # Branch on the elements of the first un-hit path set.
        target = min(remaining, key=lambda s: (len(s), tuple(sorted(s))))
        for node in sorted(target):
            if node in partial:
                continue
            new_partial = partial + (node,)
            if any(c <= frozenset(new_partial) for c in cuts):
                continue
            new_remaining = [s for s in remaining if node not in s]
            extend(new_partial, new_remaining, start)

    extend((), list(paths), 0)
    minimal = [c for c in cuts if not any(other < c for other in cuts)]
    minimal.sort(key=lambda s: (len(s), tuple(sorted(s))))
    return minimal
