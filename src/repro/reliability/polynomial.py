"""Symbolic failure polynomials in a common failure probability ``p``.

Example 1 of the paper compares the approximate algebra against the exact
series expansion ``r_L = p + 9p^2 + O(p^3)``. This module computes such
expansions *symbolically*: when every component fails with the same
probability ``p``, the failure probability of a sink is a polynomial in
``p``, and the BDD evaluation generalizes from numbers to truncated
polynomial arithmetic — each edge weight ``p`` or ``1 - p`` becomes a
coefficient array and products/sums truncate at the requested degree.

The leading terms reveal the architecture's *structural* redundancy: the
lowest nonzero degree is the size of the smallest cut, and its coefficient
counts the minimal cuts of that size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .bdd import BDD
from .events import ReliabilityProblem
from .exact import bdd_variable_order
from .pathsets import minimal_path_sets

__all__ = [
    "FailurePolynomial",
    "failure_polynomial",
    "failure_probability_polynomial",
]


class FailurePolynomial:
    """A polynomial ``sum_k coeffs[k] * p^k`` truncated at a fixed degree."""

    def __init__(self, coeffs: Sequence[float]) -> None:
        self.coeffs = np.asarray(coeffs, dtype=float)

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def __call__(self, p: float) -> float:
        """Evaluate at ``p`` (truncation error is O(p^{degree+1}))."""
        return float(np.polynomial.polynomial.polyval(p, self.coeffs))

    def coefficient(self, k: int) -> float:
        return float(self.coeffs[k]) if k <= self.degree else 0.0

    def leading_term(self) -> tuple:
        """(degree, coefficient) of the lowest-order nonzero term."""
        for k, c in enumerate(self.coeffs):
            if abs(c) > 1e-9:
                return (k, float(c))
        return (self.degree + 1, 0.0)

    def __repr__(self) -> str:
        parts = [
            f"{c:+g}*p^{k}" if k > 1 else ("+p" if c == 1 and k == 1 else f"{c:+g}*p^{k}")
            for k, c in enumerate(self.coeffs)
            if abs(c) > 1e-12
        ]
        body = " ".join(parts) if parts else "0"
        return f"FailurePolynomial({body} + O(p^{self.degree + 1}))"


def _poly_mul(a: np.ndarray, b: np.ndarray, degree: int) -> np.ndarray:
    return np.convolve(a, b)[: degree + 1]


def failure_polynomial(
    problem: ReliabilityProblem, max_degree: int = 3
) -> FailurePolynomial:
    """Series expansion of the sink failure probability in a uniform ``p``.

    Every *imperfect* component (nonzero ``p`` attribute) is treated as
    failing with the same symbolic probability ``p``; perfect components
    stay perfect. Exact up to (and including) ``p^max_degree``.
    """
    restricted = problem.restricted()
    paths = minimal_path_sets(restricted)
    if not paths:
        coeffs = np.zeros(max_degree + 1)
        coeffs[0] = 1.0
        return FailurePolynomial(coeffs)

    order = bdd_variable_order(restricted)
    bdd = BDD(order)
    root = bdd.from_path_sets(paths)

    one = np.zeros(max_degree + 1)
    one[0] = 1.0
    zero = np.zeros(max_degree + 1)
    p_poly = np.zeros(max_degree + 1)
    if max_degree >= 1:
        p_poly[1] = 1.0
    q_poly = one - p_poly  # 1 - p

    imperfect = {n for n in restricted.graph.nodes if restricted.failure_prob(n) > 0.0}
    memo: Dict[int, np.ndarray] = {0: one.copy(), 1: zero.copy()}

    def walk(node: int) -> np.ndarray:
        hit = memo.get(node)
        if hit is not None:
            return hit
        level, low, high = bdd.nodes[node]
        name = bdd.order[level]
        if name in imperfect:
            value = _poly_mul(q_poly, walk(high), max_degree) + _poly_mul(
                p_poly, walk(low), max_degree
            )
        else:
            value = walk(high)  # perfect component: always up
        memo[node] = value
        return value

    return FailurePolynomial(walk(root))


def uniform_failure_prob(problem: ReliabilityProblem) -> float:
    """The common failure probability of a uniform-``p`` problem.

    Raises ``ValueError`` when the (restricted) problem mixes two or more
    distinct nonzero probabilities — the symbolic expansion only speaks
    about a single ``p``. Returns ``0.0`` for all-perfect instances.
    """
    restricted = problem.restricted()
    probs = {
        restricted.failure_prob(n)
        for n in restricted.graph.nodes
        if restricted.failure_prob(n) > 0.0
    }
    if len(probs) > 1:
        raise ValueError(
            "polynomial engine requires a uniform failure probability; "
            f"found {len(probs)} distinct nonzero values"
        )
    return probs.pop() if probs else 0.0


def failure_probability_polynomial(problem: ReliabilityProblem) -> float:
    """Exact ``r_i`` via the symbolic failure polynomial.

    Only applicable to uniform-``p`` instances (every imperfect component
    shares one failure probability). The polynomial truncated at the
    number of imperfect components is the *complete* expansion — no term
    of higher degree exists — so evaluating it at ``p`` is exact, giving a
    fifth independent exact engine for differential verification.
    """
    p = uniform_failure_prob(problem)
    restricted = problem.restricted()
    n_imperfect = sum(
        1 for n in restricted.graph.nodes if restricted.failure_prob(n) > 0.0
    )
    poly = failure_polynomial(restricted, max_degree=max(n_imperfect, 1))
    return min(max(poly(p), 0.0), 1.0)
