"""Exact reliability by inclusion-exclusion over minimal path sets.

``P(connected) = sum_{T != {}} (-1)^{|T|+1} prod_{n in union(T)} (1 - p_n)``
over subsets ``T`` of the minimal path sets. Exponential in the number of
path sets — the textbook method the paper's §II calls "exhaustive
enumeration of failure cases" — kept as the simplest-possible oracle for
cross-checking the cleverer engines on small instances.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Sequence

from .events import ReliabilityProblem
from .pathsets import minimal_path_sets

__all__ = ["failure_probability_ie", "connectivity_probability_ie"]

_MAX_PATHS = 22  # 2^22 subsets is the practical ceiling for the oracle


def connectivity_probability_ie(problem: ReliabilityProblem) -> float:
    """P(at least one source->sink path has all nodes working)."""
    paths = minimal_path_sets(problem)
    if not paths:
        return 0.0
    if len(paths) > _MAX_PATHS:
        raise ValueError(
            f"inclusion-exclusion oracle limited to {_MAX_PATHS} path sets, "
            f"got {len(paths)}; use the BDD or factoring engine"
        )
    up = {n: 1.0 - problem.failure_prob(n) for s in paths for n in s}
    total = 0.0
    for r in range(1, len(paths) + 1):
        sign = 1.0 if r % 2 == 1 else -1.0
        for combo in combinations(paths, r):
            union: FrozenSet[str] = frozenset().union(*combo)
            prob = 1.0
            for node in union:
                prob *= up[node]
            total += sign * prob
    return min(max(total, 0.0), 1.0)


def failure_probability_ie(problem: ReliabilityProblem) -> float:
    """``r_i = 1 - P(connected)``.

    Note: the subtraction limits *relative* accuracy near r ~ 1e-15; the BDD
    engine avoids the cancellation and is preferred for very small targets.
    """
    return 1.0 - connectivity_probability_ie(problem)
