"""Mission-time reliability: failure rates, R(t) curves, MTTF.

The paper's conclusions list "impact of system dynamics" as future work;
the standard first step is moving from fixed per-mission failure
probabilities to exponential failure *rates*: a component with rate
``lambda`` (per flight hour) fails within a mission of duration ``t`` with
probability ``p(t) = 1 - exp(-lambda * t)``.

Because the connectivity structure is fixed, the sink-failure BDD is built
once and re-evaluated per time point — so full R(t) curves, mission-length
limits and MTTF integrate in milliseconds even for redundant EPS
architectures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from .bdd import BDD
from .events import ReliabilityProblem
from .exact import bdd_variable_order
from .pathsets import minimal_path_sets

__all__ = [
    "rate_to_probability",
    "MissionReliability",
    "mission_reliability",
]


def rate_to_probability(rate: float, duration: float) -> float:
    """``p = 1 - exp(-rate * duration)`` for an exponential lifetime."""
    if rate < 0 or duration < 0:
        raise ValueError("rate and duration must be non-negative")
    return -math.expm1(-rate * duration)


@dataclass
class MissionReliability:
    """Time-parametric failure probability of one sink.

    Built from a digraph whose nodes carry a ``rate`` attribute (failures
    per unit time; 0 = never fails). The compiled BDD is cached, so
    :meth:`failure_at` is a single linear pass per query.
    """

    graph: nx.DiGraph
    sources: Tuple[str, ...]
    sink: str

    def __post_init__(self) -> None:
        for node in self.graph.nodes:
            if "rate" not in self.graph.nodes[node]:
                raise ValueError(f"node {node!r} is missing a 'rate' attribute")
        probe = self.graph.copy()
        for node in probe.nodes:
            probe.nodes[node]["p"] = 0.0
        problem = ReliabilityProblem(probe, self.sources, self.sink).restricted()
        self._paths = minimal_path_sets(problem)
        self._order = bdd_variable_order(problem)
        self._bdd = BDD(self._order)
        self._root = self._bdd.from_path_sets(self._paths)
        # restricted() may rebuild nodes; read rates from the original graph.
        self._rates = {
            n: float(self.graph.nodes[n]["rate"]) for n in problem.graph.nodes
        }

    @property
    def is_connected(self) -> bool:
        return bool(self._paths)

    def failure_at(self, duration: float) -> float:
        """P(sink failed by ``duration``)."""
        if not self._paths:
            return 1.0
        up = {
            n: math.exp(-rate * duration) for n, rate in self._rates.items()
        }
        return self._bdd.prob_zero(self._root, up)

    def reliability_curve(
        self, durations: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """``[(t, r(t)), ...]`` over the requested time grid."""
        return [(t, self.failure_at(t)) for t in durations]

    def max_mission_duration(
        self, r_star: float, t_max: float = 1e7, tol: float = 1e-9
    ) -> float:
        """Longest duration with ``r(t) <= r*`` (0.0 when even t=0 fails).

        Monotonicity of ``r(t)`` makes this a bisection.
        """
        if not self._paths:
            return 0.0
        if self.failure_at(0.0) > r_star:
            return 0.0
        if self.failure_at(t_max) <= r_star:
            return t_max
        lo, hi = 0.0, t_max
        while hi - lo > tol * max(1.0, hi):
            mid = 0.5 * (lo + hi)
            if self.failure_at(mid) <= r_star:
                lo = mid
            else:
                hi = mid
        return lo

    def mttf(self, t_max: Optional[float] = None, points: int = 2000) -> float:
        """Mean time to (sink) failure: ``integral of (1 - r(t)) dt``.

        Integrates the survival function numerically on a geometric-ish
        grid; ``t_max`` defaults to ~15 mean lifetimes of the weakest
        relevant component, beyond which survival is negligible.
        """
        if not self._paths:
            return 0.0
        positive_rates = [r for r in self._rates.values() if r > 0]
        if not positive_rates:
            return math.inf  # nothing ever fails
        if t_max is None:
            t_max = 15.0 / min(positive_rates)
        grid = np.linspace(0.0, t_max, points)
        survival = np.array([1.0 - self.failure_at(t) for t in grid])
        return float(np.trapezoid(survival, grid))


def mission_reliability(
    graph: nx.DiGraph, sources: Sequence[str], sink: str
) -> MissionReliability:
    """Convenience constructor mirroring :class:`ReliabilityProblem`."""
    return MissionReliability(graph, tuple(sources), sink)
