"""Reduced Ordered Binary Decision Diagrams for reliability evaluation.

The connectivity event "some source->sink path is all-working" is a monotone
Boolean function of the component-up indicators. Building its ROBDD gives an
exact, compact representation on which failure probabilities evaluate in one
linear pass — with *no subtractive cancellation*: the probability of hitting
the 0-terminal is a sum of nonnegative products, each containing at least one
component-failure factor ``p``. This keeps full relative precision even at
the paper's smallest requirement levels (``r* = 1e-11``), where a naive
``1 - P(up)`` computation would lose digits.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = ["BDD"]


class BDD:
    """A small hash-consed ROBDD engine.

    Terminals are node ids 0 (false) and 1 (true). Every internal node is a
    triple ``(level, low, high)`` where ``level`` indexes into the fixed
    variable order, ``low`` is the co-factor for the variable = 0 and
    ``high`` for = 1. Reduction invariants (no duplicate triples, no nodes
    with ``low == high``) are maintained by :meth:`_mk`.
    """

    def __init__(self, var_order: Sequence[str]) -> None:
        if len(set(var_order)) != len(var_order):
            raise ValueError("variable order contains duplicates")
        self.order: List[str] = list(var_order)
        self.level_of: Dict[str, int] = {v: i for i, v in enumerate(self.order)}
        terminal_level = len(self.order)
        # nodes[id] = (level, low, high); terminals get sentinel children.
        self.nodes: List[Tuple[int, int, int]] = [
            (terminal_level, -1, -1),
            (terminal_level, -1, -1),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}

    # -- construction ------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        self.nodes.append(key)
        idx = len(self.nodes) - 1
        self._unique[key] = idx
        return idx

    def var(self, name: str) -> int:
        """BDD for the single positive literal ``name``."""
        return self._mk(self.level_of[name], 0, 1)

    def cube(self, names: Iterable[str]) -> int:
        """Conjunction of positive literals (a path set)."""
        result = 1
        for name in sorted(names, key=lambda n: self.level_of[n], reverse=True):
            result = self._mk(self.level_of[name], 0, result)
        return result

    # -- apply -------------------------------------------------------------

    def apply(self, op: str, u: int, v: int) -> int:
        """Binary apply for ``"and"`` / ``"or"``."""
        if op == "and":
            if u == 0 or v == 0:
                return 0
            if u == 1:
                return v
            if v == 1:
                return u
        elif op == "or":
            if u == 1 or v == 1:
                return 1
            if u == 0:
                return v
            if v == 0:
                return u
        else:
            raise ValueError(f"unknown op {op!r}")
        if u == v:
            return u
        key = (op, min(u, v), max(u, v))
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        lu, low_u, high_u = self.nodes[u]
        lv, low_v, high_v = self.nodes[v]
        level = min(lu, lv)
        if lu == level:
            u_low, u_high = low_u, high_u
        else:
            u_low = u_high = u
        if lv == level:
            v_low, v_high = low_v, high_v
        else:
            v_low = v_high = v
        result = self._mk(
            level,
            self.apply(op, u_low, v_low),
            self.apply(op, u_high, v_high),
        )
        self._apply_cache[key] = result
        return result

    def or_all(self, items: Iterable[int]) -> int:
        result = 0
        for item in items:
            result = self.apply("or", result, item)
        return result

    def from_path_sets(self, path_sets: Iterable[FrozenSet[str]]) -> int:
        """OR of cubes — the connectivity function over minimal path sets."""
        return self.or_all(self.cube(s) for s in path_sets)

    def negate(self, u: int) -> int:
        """Structural complement (swap terminals)."""
        memo: Dict[int, int] = {0: 1, 1: 0}

        def walk(node: int) -> int:
            hit = memo.get(node)
            if hit is not None:
                return hit
            level, low, high = self.nodes[node]
            result = self._mk(level, walk(low), walk(high))
            memo[node] = result
            return result

        return walk(u)

    # -- evaluation ----------------------------------------------------------

    def prob_reaching(self, root: int, terminal: int, up_prob: Dict[str, float]) -> float:
        """Probability that independent variable draws steer to ``terminal``.

        ``up_prob[name]`` is P(variable true). Missing variables default to
        certainty-up (probability 1), which is what perfect components want.
        """
        if terminal not in (0, 1):
            raise ValueError("terminal must be 0 or 1")
        memo: Dict[int, float] = {
            0: 1.0 if terminal == 0 else 0.0,
            1: 1.0 if terminal == 1 else 0.0,
        }

        def walk(node: int) -> float:
            hit = memo.get(node)
            if hit is not None:
                return hit
            level, low, high = self.nodes[node]
            p_up = up_prob.get(self.order[level], 1.0)
            value = (1.0 - p_up) * walk(low) + p_up * walk(high)
            memo[node] = value
            return value

        return walk(root)

    def prob_one(self, root: int, up_prob: Dict[str, float]) -> float:
        return self.prob_reaching(root, 1, up_prob)

    def prob_zero(self, root: int, up_prob: Dict[str, float]) -> float:
        """P(function = 0) — additive-only evaluation, no cancellation."""
        return self.prob_reaching(root, 0, up_prob)

    def evaluate(self, root: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a concrete assignment (missing vars default True)."""
        node = root
        while node not in (0, 1):
            level, low, high = self.nodes[node]
            node = high if assignment.get(self.order[level], True) else low
        return node == 1

    def size(self, root: int) -> int:
        """Number of distinct internal nodes reachable from ``root``."""
        seen = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in (0, 1) or node in seen:
                continue
            seen.add(node)
            _, low, high = self.nodes[node]
            stack.extend((low, high))
        return len(seen)
