"""Component importance measures for synthesized architectures.

Once ILP-MR/ILP-AR produce an architecture, a designer's next question is
*which component dominates the residual failure probability* — the lever
for targeted upgrades (the design-space exploration the paper's ARCHEX
prototype motivates). This module computes the classical measures on top
of the exact BDD engine:

* **Birnbaum importance** ``I_B(i) = P(fail | i down) - P(fail | i up)`` —
  the sensitivity ``d r / d p_i``;
* **criticality importance** ``I_C(i) = I_B(i) * p_i / r`` — the fraction
  of system failure probability attributable to ``i`` failing *and* being
  pivotal;
* **improvement potential** ``IP(i) = r - P(fail | i up)`` — how much the
  failure probability drops if ``i`` were made perfect;
* **Fussell-Vesely** ``I_FV(i) ~= P(some min cut containing i fails) / r``
  (rare-event approximation over minimal cut sets).

All conditional probabilities are exact BDD evaluations with the
component's up-probability pinned to 0 or 1 — no resampling, no
re-enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .bdd import BDD
from .events import ReliabilityProblem
from .exact import bdd_variable_order
from .pathsets import minimal_cut_sets, minimal_path_sets

__all__ = ["ComponentImportance", "importance_measures", "ranked_importance"]


@dataclass
class ComponentImportance:
    """All measures for one component."""

    component: str
    failure_prob: float
    birnbaum: float
    criticality: float
    improvement_potential: float
    fussell_vesely: float

    def __repr__(self) -> str:
        return (
            f"ComponentImportance({self.component!r}, I_B={self.birnbaum:.3e}, "
            f"I_C={self.criticality:.3e}, IP={self.improvement_potential:.3e}, "
            f"I_FV={self.fussell_vesely:.3e})"
        )


def importance_measures(problem: ReliabilityProblem) -> Dict[str, ComponentImportance]:
    """Exact importance measures for every imperfect component.

    Components with ``p = 0`` are skipped (their Birnbaum importance may
    still be nonzero, but they are not upgrade candidates).
    """
    restricted = problem.restricted()
    paths = minimal_path_sets(restricted)
    graph = restricted.graph
    relevant = sorted({n for s in paths for n in s}) if paths else []

    if not paths:
        return {}

    order = bdd_variable_order(restricted)
    bdd = BDD(order)
    root = bdd.from_path_sets(paths)
    up_prob = {n: 1.0 - restricted.failure_prob(n) for n in graph.nodes}
    r = bdd.prob_zero(root, up_prob)

    cuts = minimal_cut_sets(restricted)

    results: Dict[str, ComponentImportance] = {}
    for node in relevant:
        p = restricted.failure_prob(node)
        if p <= 0.0:
            continue
        pinned_down = dict(up_prob)
        pinned_down[node] = 0.0
        fail_given_down = bdd.prob_zero(root, pinned_down)
        pinned_up = dict(up_prob)
        pinned_up[node] = 1.0
        fail_given_up = bdd.prob_zero(root, pinned_up)

        birnbaum = fail_given_down - fail_given_up
        criticality = birnbaum * p / r if r > 0 else 0.0
        improvement = r - fail_given_up

        # Rare-event FV: sum of cut-set failure probabilities through node.
        fv_numerator = 0.0
        for cut in cuts:
            if node in cut:
                prob = 1.0
                for member in cut:
                    prob *= restricted.failure_prob(member)
                fv_numerator += prob
        fussell_vesely = min(fv_numerator / r, 1.0) if r > 0 else 0.0

        results[node] = ComponentImportance(
            component=node,
            failure_prob=p,
            birnbaum=birnbaum,
            criticality=criticality,
            improvement_potential=improvement,
            fussell_vesely=fussell_vesely,
        )
    return results


def ranked_importance(
    problem: ReliabilityProblem, measure: str = "birnbaum", top: Optional[int] = None
) -> List[ComponentImportance]:
    """Components sorted by a measure, most important first."""
    valid = {"birnbaum", "criticality", "improvement_potential", "fussell_vesely"}
    if measure not in valid:
        raise ValueError(f"unknown measure {measure!r}; pick one of {sorted(valid)}")
    values = list(importance_measures(problem).values())
    values.sort(key=lambda ci: (-getattr(ci, measure), ci.component))
    return values[:top] if top is not None else values
