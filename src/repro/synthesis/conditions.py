"""Operating conditions and condition-dependent adequacy requirements.

§V states the power-flow requirement per *operating condition*: "the total
power provided by the generators in each operating condition is greater
than or equal to the total power required by the connected loads".
:class:`OperatingCondition` names such a condition — some components
unavailable (failed engine, maintenance), some loads sheddable — and
:class:`AdequacyUnderConditions` emits one linear adequacy row per
condition:

    sum_{suppliers not unavailable} cap_i * delta_i  >=  sum demands of
                                                         non-shed loads

:class:`NMinusOneAdequacy` is the special case enumerating the
single-supplier-out conditions automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..ilp import lin_sum
from .spec import Requirement

if TYPE_CHECKING:  # pragma: no cover
    from .encoder import ArchitectureEncoder

__all__ = ["OperatingCondition", "AdequacyUnderConditions", "standard_flight_conditions"]


@dataclass(frozen=True)
class OperatingCondition:
    """A named operating condition.

    Attributes
    ----------
    name:
        Human-readable label ("left engine out", "ground ops").
    unavailable:
        Component names whose capacity does not count in this condition.
    shed_loads:
        Load names whose demand is dropped (non-essential in this
        condition).
    """

    name: str
    unavailable: Sequence[str] = field(default_factory=tuple)
    shed_loads: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "unavailable", tuple(self.unavailable))
        object.__setattr__(self, "shed_loads", tuple(self.shed_loads))


@dataclass
class AdequacyUnderConditions(Requirement):
    """Power adequacy must hold in every listed operating condition."""

    conditions: Sequence[OperatingCondition]
    margin: float = 0.0

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        for condition in self.conditions:
            unavailable = set(condition.unavailable)
            shed = set(condition.shed_loads)
            for name in unavailable | shed:
                t.index_of(name)  # raises KeyError on typos
            supply_terms = [
                t.spec(i).capacity * enc.delta[i]
                for i in range(t.num_nodes)
                if t.spec(i).capacity > 0 and t.name_of(i) not in unavailable
            ]
            demand = sum(
                t.spec(i).demand
                for i in range(t.num_nodes)
                if t.spec(i).demand > 0 and t.name_of(i) not in shed
            )
            enc.model.add_constr(
                lin_sum(supply_terms) >= demand + self.margin,
                tag=f"req.condition.{condition.name}",
            )


def standard_flight_conditions(template) -> List[OperatingCondition]:
    """A representative aircraft condition set for an EPS template:

    * ``nominal`` — everything available;
    * one ``<generator>-out`` condition per generator (the N-1 family);
    * ``emergency`` — only the APU (when present) plus one generator per
      side available, non-essential loads shed (loads with demand <= 10 kW
      are treated as sheddable in this canned profile).
    """
    gens = [template.name_of(i) for i in template.nodes_of_type("generator")]
    loads = [template.name_of(i) for i in template.nodes_of_type("load")]
    sheddable = [
        n for n in loads
        if template.spec(template.index_of(n)).demand <= 10.0
    ]
    conditions = [OperatingCondition("nominal")]
    for g in gens:
        conditions.append(OperatingCondition(f"{g}-out", unavailable=(g,)))
    non_apu = [g for g in gens if g != "APU"]
    if len(non_apu) > 2:
        keep = {non_apu[0], non_apu[-1]}
        conditions.append(
            OperatingCondition(
                "emergency",
                unavailable=tuple(g for g in non_apu if g not in keep),
                shed_loads=tuple(sheddable),
            )
        )
    return conditions
