"""Synthesis problem specification and declarative interconnection requirements.

A :class:`SynthesisSpec` bundles everything Algorithms 1 and 3 take as
input: the template, the interconnection requirements (eqs. 2-4), the
reliability requirement ``r*`` and the sinks it applies to.

Requirement objects are declarative; each knows how to emit its linear
constraints into an :class:`repro.synthesis.encoder.ArchitectureEncoder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..arch import ArchitectureTemplate
from ..ilp import lin_sum, or_

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .encoder import ArchitectureEncoder

__all__ = [
    "SynthesisSpec",
    "Requirement",
    "ConnectionBound",
    "IfConnectedThenConnected",
    "IfFeedsThenFed",
    "NodeBalance",
    "NMinusOneAdequacy",
    "SymmetryBreaking",
    "GlobalPowerAdequacy",
    "RequireIncomingEdge",
    "RequireEdge",
    "ForbidEdge",
]


class Requirement:
    """Base class for declarative interconnection requirements."""

    def apply(self, enc: "ArchitectureEncoder") -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class ConnectionBound(Requirement):
    """Eq. 2: bound the number of connections from ``sources`` to ``dests``.

    ``per`` selects the quantifier:

    * ``"source"`` — one constraint per source node over its edges into
      ``dests`` (the paper's "for all j in L");
    * ``"dest"`` — one constraint per destination node over its incoming
      edges from ``sources``;
    * ``"total"`` — a single constraint over all pairs.

    ``sense`` is ``">="``, ``"<="`` or ``"=="``; ``k`` the bound.
    """

    sources: Sequence[str]
    dests: Sequence[str]
    k: int = 1
    sense: str = ">="
    per: str = "dest"
    only_if_used: bool = False  # bound applies only when the quantified node is used

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        src_idx = [t.index_of(s) for s in self.sources]
        dst_idx = [t.index_of(d) for d in self.dests]
        groups: List[tuple] = []
        if self.per == "source":
            groups = [([(s, d) for d in dst_idx], s) for s in src_idx]
        elif self.per == "dest":
            groups = [([(s, d) for s in src_idx], d) for d in dst_idx]
        elif self.per == "total":
            groups = [([(s, d) for s in src_idx for d in dst_idx], None)]
        else:
            raise ValueError(f"unknown quantifier {self.per!r}")

        for pairs, quantified in groups:
            vars_ = [enc.edge.get(p) for p in pairs]
            vars_ = [v for v in vars_ if v is not None]
            total = lin_sum(vars_)
            if self.only_if_used and quantified is not None:
                delta = enc.delta[quantified]
                if self.sense == ">=":
                    constr = total >= self.k * delta
                elif self.sense == "<=":
                    # Upper bounds already hold trivially for unused nodes.
                    constr = total <= self.k
                else:
                    raise ValueError("only_if_used supports >= and <= only")
            else:
                if not vars_ and self.sense in (">=", "==") and self.k > 0:
                    raise ValueError(
                        "requirement demands connections but the template "
                        f"allows none ({self.sources!r} -> {self.dests!r})"
                    )
                if self.sense == ">=":
                    constr = total >= self.k
                elif self.sense == "<=":
                    constr = total <= self.k
                elif self.sense == "==":
                    constr = total == self.k
                else:
                    raise ValueError(f"unknown sense {self.sense!r}")
            enc.model.add_constr(constr, tag="req.connection")


@dataclass
class IfConnectedThenConnected(Requirement):
    """Eq. 3: if any ``upstream -> via`` edge exists, ``via`` must connect
    onward to at least one node of ``downstream``."""

    upstream: Sequence[str]
    via: Sequence[str]
    downstream: Sequence[str]

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        up_idx = [t.index_of(u) for u in self.upstream]
        down_idx = [t.index_of(d) for d in self.downstream]
        for via_name in self.via:
            d = t.index_of(via_name)
            incoming = [enc.edge[(u, d)] for u in up_idx if (u, d) in enc.edge]
            outgoing = [enc.edge[(d, b)] for b in down_idx if (d, b) in enc.edge]
            if not incoming:
                continue
            if not outgoing:
                # Incoming implies outgoing, but none is possible: forbid all.
                for var in incoming:
                    enc.model.add_constr(var <= 0, tag="req.implied")
                continue
            lhs = or_(enc.model, incoming, name=f"in_{via_name}_{enc.fresh()}")
            rhs = or_(enc.model, outgoing, name=f"out_{via_name}_{enc.fresh()}")
            enc.model.add_constr(lhs <= rhs, tag="req.implied")


@dataclass
class IfFeedsThenFed(Requirement):
    """Eq. 3 in the downstream direction: if ``via`` has an outgoing edge to
    any ``downstream`` node, it must have an incoming edge from at least one
    ``upstream`` node (e.g. a DC bus feeding a load must be fed by a
    rectifier — §V)."""

    via: Sequence[str]
    downstream: Sequence[str]
    upstream: Sequence[str]

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        down_idx = [t.index_of(d) for d in self.downstream]
        up_idx = [t.index_of(u) for u in self.upstream]
        for via_name in self.via:
            d = t.index_of(via_name)
            outgoing = [enc.edge[(d, b)] for b in down_idx if (d, b) in enc.edge]
            incoming = [enc.edge[(u, d)] for u in up_idx if (u, d) in enc.edge]
            if not outgoing:
                continue
            if not incoming:
                for var in outgoing:
                    enc.model.add_constr(var <= 0, tag="req.implied")
                continue
            lhs = or_(enc.model, outgoing, name=f"feeds_{via_name}_{enc.fresh()}")
            rhs = or_(enc.model, incoming, name=f"fed_{via_name}_{enc.fresh()}")
            enc.model.add_constr(lhs <= rhs, tag="req.implied")


@dataclass
class NodeBalance(Requirement):
    """Eq. 4: at node ``d``, supplied power covers demanded power:
    ``sum_b w_b e_bd >= sum_l w_l e_dl`` with ``w`` = predecessor capacity
    and successor demand (terminal variables of the library)."""

    node: str

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        d = t.index_of(self.node)
        lhs_terms = []
        for b in t.predecessors_allowed(d):
            weight = t.spec(b).capacity
            if weight and (b, d) in enc.edge:
                lhs_terms.append(weight * enc.edge[(b, d)])
        rhs_terms = []
        for l in t.successors_allowed(d):
            weight = t.spec(l).demand
            if weight and (d, l) in enc.edge:
                rhs_terms.append(weight * enc.edge[(d, l)])
        if rhs_terms:
            enc.model.add_constr(
                lin_sum(lhs_terms) >= lin_sum(rhs_terms), tag="req.balance"
            )


@dataclass
class GlobalPowerAdequacy(Requirement):
    """§V power flow: total instantiated generation covers total load demand.

    The paper states the requirement as "the total power provided by the
    generators in each operating condition is greater than or equal to the
    total power required by the connected loads"; with all loads essential
    the demand side is the library total.
    """

    margin: float = 0.0

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        supply = lin_sum(
            t.spec(i).capacity * enc.delta[i]
            for i in range(t.num_nodes)
            if t.spec(i).capacity > 0
        )
        demand = sum(t.spec(i).demand for i in range(t.num_nodes))
        enc.model.add_constr(supply >= demand + self.margin, tag="req.power")


@dataclass
class RequireIncomingEdge(Requirement):
    """Every listed node must have at least ``k`` incoming edges (e.g. all
    loads must be attached to a bus)."""

    nodes: Sequence[str]
    k: int = 1

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        for name in self.nodes:
            j = t.index_of(name)
            incoming = [enc.edge[(i, j)] for i in t.predecessors_allowed(j)]
            if len(incoming) < self.k:
                raise ValueError(
                    f"node {name!r} needs {self.k} incoming edges but the "
                    f"template allows only {len(incoming)}"
                )
            enc.model.add_constr(lin_sum(incoming) >= self.k, tag="req.incoming")


@dataclass
class RequireEdge(Requirement):
    """Force one specific edge to be active."""

    src: str
    dst: str

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        var = enc.edge[(t.index_of(self.src), t.index_of(self.dst))]
        enc.model.add_constr(var >= 1, tag="req.edge")


@dataclass
class ForbidEdge(Requirement):
    """Force one specific edge to stay inactive."""

    src: str
    dst: str

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        var = enc.edge.get((t.index_of(self.src), t.index_of(self.dst)))
        if var is not None:
            enc.model.add_constr(var <= 0, tag="req.edge")


@dataclass
class NMinusOneAdequacy(Requirement):
    """N-1 contingency power flow: after losing any single supplier, the
    remaining instantiated generation still covers the total demand.

    This is the "in each operating condition" reading of the paper's §V
    power-flow requirement taken one step further — the classical N-1
    criterion of power-system design. Linear per supplier ``g``:
    ``sum_i cap_i * delta_i - cap_g * delta_g >= demand``.
    """

    margin: float = 0.0

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        suppliers = [i for i in range(t.num_nodes) if t.spec(i).capacity > 0]
        demand = sum(t.spec(i).demand for i in range(t.num_nodes))
        total = lin_sum(
            t.spec(i).capacity * enc.delta[i] for i in suppliers
        )
        for g in suppliers:
            enc.model.add_constr(
                total - t.spec(g).capacity * enc.delta[g] >= demand + self.margin,
                tag="req.n_minus_1",
            )


@dataclass
class SymmetryBreaking(Requirement):
    """Order interchangeable siblings to prune symmetric branches.

    For each group declared via
    :meth:`repro.arch.ArchitectureTemplate.declare_interchangeable`, adds
    ``delta_a >= delta_b`` and ``indeg(a) >= indeg(b)`` for consecutive
    members. Any feasible configuration can be permuted (the group is an
    automorphism orbit) so that members are sorted by (in-degree, usage),
    hence the constraints preserve at least one optimal solution while
    removing the factorially many permuted copies that otherwise stall
    branch-and-bound on the learned-path models.
    """

    def apply(self, enc: "ArchitectureEncoder") -> None:
        t = enc.template
        for group in t.interchangeable_groups:
            indices = [t.index_of(n) for n in group]
            for a, b in zip(indices, indices[1:]):
                enc.model.add_constr(
                    enc.delta[a] >= enc.delta[b], tag="symmetry"
                )
                in_a = lin_sum(
                    enc.edge[(i, a)] for i in t.predecessors_allowed(a)
                )
                in_b = lin_sum(
                    enc.edge[(i, b)] for i in t.predecessors_allowed(b)
                )
                # Predecessor sets of an orbit differ only by a<->b swaps;
                # total in-degree is permutation-invariant, so ordering it
                # is sound.
                enc.model.add_constr(in_a >= in_b, tag="symmetry")


@dataclass
class SynthesisSpec:
    """Input to Algorithms 1 and 3.

    Attributes
    ----------
    template:
        The reconfigurable architecture.
    requirements:
        Interconnection requirements (eqs. 2-4 instances).
    reliability_target:
        ``r*`` — required upper bound on each sink's failure probability.
        ``None`` disables the reliability loop (pure eq. 1 optimization).
    sinks_of_interest:
        Sink names the requirement applies to; defaults to all sinks.
    """

    template: ArchitectureTemplate
    requirements: List[Requirement] = field(default_factory=list)
    reliability_target: Optional[float] = None
    sinks_of_interest: Optional[List[str]] = None

    def sinks(self) -> List[str]:
        if self.sinks_of_interest is not None:
            return list(self.sinks_of_interest)
        return [self.template.name_of(i) for i in self.template.sink_indices()]

    def build_encoder(self) -> "ArchitectureEncoder":
        """GENILP: objective (eq. 1) + interconnection constraints."""
        from .encoder import ArchitectureEncoder

        enc = ArchitectureEncoder(self.template)
        for requirement in self.requirements:
            requirement.apply(enc)
        return enc
