"""LEARNCONS (Algorithm 2): constraint learning to improve reliability.

Given a candidate architecture whose exact reliability ``r`` misses the
requirement ``r*``, LEARNCONS:

1. estimates the number of additional redundant paths needed
   (ESTPATH): ``k = floor(log(r*/r) / log(rho))`` with ``rho`` the failure
   probability of a single path — conservative because real paths share
   components;
2. if ``k >= 1``: for every sink and every component type (walked from the
   sink's side of the partition toward the sources, as in Algorithm 2),
   ADDPATH enforces that at least ``k`` *additional* components of the type
   are connected to the sink via the walk-indicator constraint (eq. 6),
   capped at the template's availability;
3. if ``k == 0``: one additional path is enforced from the sink to the type
   with minimum redundancy in the current architecture (FINDMINREDTYPE) —
   the fine-tuning move of the paper's third Fig. 2 iteration.

The module also implements the *lazy* baseline strategy evaluated in
Table II (bottom): always add a single path to the minimum-redundancy type,
ignoring the ESTPATH inference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arch import Architecture, walk_indicator
from ..ilp import lin_sum
from ..reliability import single_path_failure
from .encoder import ArchitectureEncoder
from .spec import SynthesisSpec

__all__ = ["estimate_paths", "learn_constraints", "LearnConsOutcome"]


@dataclass
class LearnConsOutcome:
    """What one LEARNCONS invocation did to the model."""

    added_constraints: int
    estimated_k: int
    saturated: bool  # True when no further paths can be enforced at all

    @property
    def feasible(self) -> bool:
        return self.added_constraints > 0


def estimate_paths(r: float, r_star: float, rho: float) -> int:
    """ESTPATH: redundant paths needed, assuming independent paths.

    ``k = floor(log(r*/r) / log(rho))``; 0 when ``r`` is already within one
    path-failure factor of the target. Guards degenerate ``rho`` values.
    """
    if r <= 0 or r_star >= r:
        return 0
    if rho <= 0.0 or rho >= 1.0:
        # A certain-to-fail (or perfect) path carries no signal about how
        # much redundancy helps; fall back to the fine-tuning branch.
        return 0
    return int(math.floor(math.log(r_star / r) / math.log(rho)))


def _connected_counts(
    arch: Architecture, sink: str, max_len_of: Dict[str, int]
) -> Dict[str, int]:
    """Per type: components with a walk to the sink in the current arch.

    This is the ``eta*`` term of eq. 6, evaluated concretely on ``e*``.

    Counting uses cross-type edges only, matching the symbolic walk
    indicators of :class:`repro.arch.ReachabilityEncoder`: same-type sibling
    edges are predecessor-sharing shorthand, not physical hops toward the
    sink, so they must not inflate the redundancy count (otherwise ADDPATH
    believes the redundancy already exists and the loop stalls).
    """
    t = arch.template
    adjacency = arch.adjacency()
    for (i, j) in arch.edges:
        if t.type_of(i) == t.type_of(j):
            adjacency[i, j] = False
    sink_idx = t.index_of(sink)
    counts: Dict[str, int] = {}
    for ctype in t.type_order:
        max_len = max_len_of[ctype]
        eta = walk_indicator(adjacency, max_len)
        members = t.nodes_of_type(ctype)
        counts[ctype] = sum(
            1 for w in members if w != sink_idx and eta[w, sink_idx]
        )
        if sink_idx in members:
            counts[ctype] += 1  # the sink trivially "reaches" itself
    return counts


def _max_walk_lengths(enc: ArchitectureEncoder) -> Dict[str, int]:
    """Walk budget per type: ``n - i + 1`` as in eq. 6 (one slack hop for
    the same-type sibling shorthand)."""
    t = enc.template
    n = t.num_types
    return {ctype: max(1, n - t.type_layer(ctype) + 1) for ctype in t.type_order}


def _add_path_constraint(
    enc: ArchitectureEncoder,
    sink: str,
    ctype: str,
    target: int,
    max_len: int,
    current: int,
) -> bool:
    """ADDPATH: require >= ``target`` type members connected to the sink.

    Emits eq. 6 over the symbolic walk indicators, capped at the number of
    connections the *template* can host at all. Returns False — without
    adding anything — when even the capped target does not exceed the
    ``current`` count: emitting an already-satisfied constraint would make
    the ILP-MR loop spin forever instead of reporting UNFEASIBLE.
    """
    t = enc.template
    sink_idx = t.index_of(sink)
    members = [w for w in t.nodes_of_type(ctype)]
    reach = enc.reach.reach_to(sink_idx, max_len)
    terms = []
    for w in members:
        if w == sink_idx:
            terms.append(1)  # the sink counts as connected to itself
            continue
        var = reach.get(w)
        if var is not None:
            terms.append(var)
    # "Attempts to enforce the maximum available number of paths": cap the
    # target at what the template's connectivity permits.
    achievable = len(terms)
    target = min(target, achievable)
    if target <= current:
        return False
    enc.model.add_constr(lin_sum(terms) >= target, tag=f"learned.{ctype}.{sink}")
    return True


def _find_min_redundancy_type(
    counts: Dict[str, int],
    capacities: Dict[str, int],
    type_order: List[str],
    skip: Optional[str] = None,
) -> Optional[str]:
    """FINDMINREDTYPE: the unsaturated type with fewest connections."""
    best: Optional[str] = None
    for ctype in type_order:
        if ctype == skip:
            continue
        if counts[ctype] >= capacities[ctype]:
            continue  # already maximally redundant
        if best is None or counts[ctype] < counts[best]:
            best = ctype
    return best


def learn_constraints(
    enc: ArchitectureEncoder,
    spec: SynthesisSpec,
    arch: Architecture,
    r: float,
    r_star: float,
    strategy: str = "learncons",
) -> LearnConsOutcome:
    """Algorithm 2 — augment the model so the next ILP solution is more
    redundant. ``strategy="lazy"`` selects the Table II baseline instead."""
    t = enc.template
    max_len_of = _max_walk_lengths(enc)
    capacities = {ctype: len(t.nodes_of_type(ctype)) for ctype in t.type_order}
    sinks = spec.sinks()

    added = 0
    saturated = True
    k_estimates: List[int] = []

    for sink in sinks:
        rho = single_path_failure(arch, sink)
        k = estimate_paths(r, r_star, rho)
        if strategy == "lazy":
            k = 0  # the lazy baseline never infers multiple paths
        k_estimates.append(k)
        counts = _connected_counts(arch, sink, max_len_of)
        sink_type = t.type_of(t.index_of(sink))

        if k >= 1:
            # Enforce k extra connected components of every implementing
            # type, from the sink-side types toward the sources
            # (T_{n-1}..T_1). The sink's own type is skipped wherever it
            # sits in the partition order — redundancy of the sink's
            # siblings cannot add a path *to* the sink, and enforcing it
            # would demand meaningless sibling->sink connections.
            for ctype in reversed([c for c in t.type_order if c != sink_type]):
                current = counts[ctype]
                if current >= capacities[ctype]:
                    continue  # nothing more to enforce for this type
                target = min(current + k, capacities[ctype])
                if _add_path_constraint(
                    enc, sink, ctype, target, max_len_of[ctype], current
                ):
                    added += 1
                    saturated = False
        else:
            # Try types from least redundant upward until one accepts an
            # extra path (a type can be unsaturated by |Pi| yet already at
            # the template's connectivity limit).
            candidates = sorted(
                (c for c in t.type_order
                 if c != sink_type and counts[c] < capacities[c]),
                key=lambda c: counts[c],
            )
            for ctype in candidates:
                if _add_path_constraint(
                    enc, sink, ctype, counts[ctype] + 1,
                    max_len_of[ctype], counts[ctype],
                ):
                    added += 1
                    saturated = False
                    break

    return LearnConsOutcome(
        added_constraints=added,
        estimated_k=max(k_estimates) if k_estimates else 0,
        saturated=saturated and added == 0,
    )
