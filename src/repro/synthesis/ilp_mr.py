"""ILP Modulo Reliability — Algorithm 1 of the paper.

The lazy loop: solve the ILP for interconnection constraints only, run the
*exact* reliability analysis on the candidate (RELANALYSIS), and when the
requirement is missed, learn interconnection constraints (Algorithm 2 /
:mod:`repro.synthesis.learncons`) that force redundancy, then re-solve.
Reliability analysis runs only a handful of times, on concrete graphs —
never symbolically over the whole configuration space.
"""

from __future__ import annotations

import time
from typing import Optional

from .. import obs
from ..ilp import BnBOptions, WarmStartContext
from ..reliability import worst_case_failure
from .learncons import learn_constraints
from .result import IterationRecord, SynthesisResult
from .spec import SynthesisSpec

__all__ = ["synthesize_ilp_mr"]


def synthesize_ilp_mr(
    spec: SynthesisSpec,
    strategy: str = "learncons",
    backend: str = "auto",
    rel_method: str = "bdd",
    max_iterations: int = 60,
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
    warm: bool = True,
) -> SynthesisResult:
    """Run ILP-MR on a synthesis spec.

    Parameters
    ----------
    strategy:
        ``"learncons"`` — Algorithm 2 with ESTPATH inference (Table II top);
        ``"lazy"`` — the one-path-per-iteration baseline (Table II bottom).
    backend:
        MILP backend for SOLVEILP (see :func:`repro.ilp.solve`).
    rel_method:
        Exact engine for RELANALYSIS (see :mod:`repro.reliability.exact`).
    mip_rel_gap:
        Optional relative MIP gap passed to the solver; the learned-path
        models are highly symmetric (interchangeable buses/rectifiers), so a
        small gap (e.g. 1e-3) speeds large instances up considerably at a
        bounded cost-optimality loss.
    warm:
        Reuse work across iterations (default on): the encoded model is
        exported incrementally as LEARNCONS appends rows, and with the
        from-scratch backend each SOLVEILP re-optimizes from the previous
        iteration's optimal basis (dual simplex) with the previous
        candidate offered as incumbent. ``False`` restores the original
        re-encode-and-cold-start-everything behavior — the cold baseline in
        ``BENCH_ilp.json``.
    """
    if spec.reliability_target is None:
        raise ValueError("ILP-MR needs spec.reliability_target (r*)")
    r_star = spec.reliability_target
    ctx: Optional[WarmStartContext] = WarmStartContext() if warm else None
    # warm=False is the measured cold baseline: node-level basis inheritance
    # inside branch-and-bound is switched off too, restoring the original
    # two-phase cold start at every node.
    bnb_options = None if warm else BnBOptions(warm_start=False)

    live = obs.run_registry().start(
        "ilp_mr", strategy=strategy, backend=backend, target=r_star,
        iteration=0,
    )
    result = None
    try:
        with obs.log_context(run=live.run_id):
            result = _synthesize_ilp_mr(
                spec, strategy, backend, rel_method, max_iterations,
                time_limit, mip_rel_gap, r_star, ctx, bnb_options, live,
            )
            return result
    finally:
        live.finish(
            status=result.status if result is not None else "error",
            cost=None if result is None or result.architecture is None
            else result.cost,
        )


def _synthesize_ilp_mr(
    spec: SynthesisSpec,
    strategy: str,
    backend: str,
    rel_method: str,
    max_iterations: int,
    time_limit: Optional[float],
    mip_rel_gap: Optional[float],
    r_star: float,
    ctx: Optional[WarmStartContext],
    bnb_options: Optional[BnBOptions],
    live: "obs.RunHandle",
) -> SynthesisResult:
    warm = ctx is not None
    with obs.span(
        "ilp_mr", strategy=strategy, backend=backend, rel_method=rel_method,
        warm=warm,
    ) as run_span:
        with obs.span("ilp_mr.setup"):
            setup_start = time.perf_counter()
            enc = spec.build_encoder()
            setup_time = time.perf_counter() - setup_start

        result = SynthesisResult(
            status="limit",
            architecture=None,
            cost=float("inf"),
            reliability=None,
            algorithm=f"ILP-MR[{strategy}]",
            setup_time=setup_time,
        )

        for iteration in range(1, max_iterations + 1):
            with obs.span("ilp_mr.iteration", index=iteration) as it_span:
                with obs.span("ilp_mr.solve"):
                    solve_start = time.perf_counter()
                    solved = enc.solve(
                        backend=backend, time_limit=time_limit,
                        mip_rel_gap=mip_rel_gap, warm=ctx,
                        options=bnb_options,
                    )
                    solver_time = time.perf_counter() - solve_start
                result.solver_time += solver_time

                if not solved.is_optimal:
                    result.status = (
                        "infeasible" if solved.status == "infeasible"
                        else solved.status
                    )
                    result.model_stats = enc.model.stats()
                    it_span.set_attr("status", result.status)
                    run_span.set_attr("iterations", iteration)
                    return result

                arch = enc.decode(solved)
                with obs.span("ilp_mr.analysis"):
                    analysis_start = time.perf_counter()
                    r, worst_sink = worst_case_failure(
                        arch, spec.sinks(), method=rel_method
                    )
                    analysis_time = time.perf_counter() - analysis_start
                result.analysis_time += analysis_time

                record = IterationRecord(
                    index=iteration,
                    architecture=arch,
                    cost=arch.cost(),
                    reliability=r,
                    worst_sink=worst_sink,
                    solver_time=solver_time,
                    analysis_time=analysis_time,
                )
                result.iterations.append(record)
                it_span.set_attr("cost", record.cost)
                it_span.set_attr("reliability", r)
                it_span.set_attr("worst_sink", worst_sink)
                live.update(
                    iteration=iteration, cost=record.cost, reliability=r,
                    worst_sink=worst_sink,
                )
                obs.log(
                    "ilp_mr.iteration", iteration=iteration, cost=record.cost,
                    reliability=r, worst_sink=worst_sink,
                    solver_time=round(solver_time, 6),
                    analysis_time=round(analysis_time, 6),
                )

                if r <= r_star:
                    result.status = "optimal"
                    result.architecture = arch
                    result.cost = arch.cost()
                    result.reliability = r
                    result.model_stats = enc.model.stats()
                    run_span.set_attr("iterations", iteration)
                    run_span.set_attr("status", "optimal")
                    run_span.set_attr("cost", result.cost)
                    return result

                with obs.span("ilp_mr.learncons"):
                    outcome = learn_constraints(
                        enc, spec, arch, r, r_star, strategy=strategy
                    )
                record.learned_constraints = outcome.added_constraints
                record.estimated_k = outcome.estimated_k
                it_span.set_attr(
                    "learned_constraints", outcome.added_constraints
                )
                it_span.set_attr("estimated_k", outcome.estimated_k)
                if outcome.saturated:
                    result.status = "infeasible"
                    result.model_stats = enc.model.stats()
                    run_span.set_attr("iterations", iteration)
                    run_span.set_attr("status", "infeasible")
                    return result

        result.model_stats = enc.model.stats()
        run_span.set_attr("iterations", max_iterations)
        run_span.set_attr("status", result.status)
        return result
