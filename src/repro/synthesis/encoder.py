"""GENILP: translate a template into an ILP (objective of eq. 1).

The encoder owns the mapping between the template's allowed edges and 0-1
decision variables, the node-usage indicators ``delta_i`` and the switch
pair variables ``(e_ij OR e_ji)`` that eq. 1 charges once per contactor.
ILP-MR keeps extending one encoder's model across iterations, so learned
constraints accumulate exactly as in Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..arch import Architecture, ArchitectureTemplate, ReachabilityEncoder
from ..ilp import LinExpr, Model, SolveResult, Var, lin_sum

__all__ = ["ArchitectureEncoder"]


class ArchitectureEncoder:
    """Edge/usage variables, eq. 1 objective, and decode-back support."""

    def __init__(self, template: ArchitectureTemplate, model: Optional[Model] = None) -> None:
        self.template = template
        self.model = model or Model(f"genilp[{template.name}]")
        self._fresh = 0

        # Edge decision variables e_ij over allowed edges.
        self.edge: Dict[Tuple[int, int], Var] = {}
        for (i, j) in template.allowed_edges:
            self.edge[(i, j)] = self.model.add_binary(
                f"e__{template.name_of(i)}__{template.name_of(j)}"
            )

        # delta_i = OR of incident edges (eq. 1), linearized.
        self.delta: Dict[int, Var] = {}
        for i in range(template.num_nodes):
            incident = [
                self.edge[(a, b)]
                for (a, b) in self.edge
                if a == i or b == i
            ]
            delta = self.model.add_binary(f"delta__{template.name_of(i)}")
            self.delta[i] = delta
            if incident:
                for var in incident:
                    self.model.add_constr(delta >= var, tag="delta")
                self.model.add_constr(delta <= lin_sum(incident), tag="delta")
            else:
                self.model.add_constr(delta <= 0, tag="delta")

        # Switch pair variables: one per unordered allowed pair, equal to
        # e_ij OR e_ji, charged the contactor cost once.
        self.pair: Dict[Tuple[int, int], Var] = {}
        for (i, j) in template.undirected_pairs():
            members = [
                self.edge[e] for e in ((i, j), (j, i)) if e in self.edge
            ]
            if len(members) == 1:
                # Only one direction allowed: the pair var IS that edge var.
                self.pair[(i, j)] = members[0]
                continue
            y = self.model.add_binary(
                f"sw__{template.name_of(i)}__{template.name_of(j)}"
            )
            for var in members:
                self.model.add_constr(y >= var, tag="switch")
            self.model.add_constr(y <= lin_sum(members), tag="switch")
            self.pair[(i, j)] = y

        # Objective: component costs + switch costs (eq. 1).
        component_cost = lin_sum(
            template.spec(i).cost * self.delta[i] for i in range(template.num_nodes)
        )
        switch_cost = lin_sum(
            template.switch_cost(i, j) * self.pair[(i, j)]
            for (i, j) in self.pair
        )
        self.model.minimize(component_cost + switch_cost)

        self._reach: Optional[ReachabilityEncoder] = None

    # -- variable access --------------------------------------------------------

    def edge_var(self, src: str, dst: str) -> Var:
        t = self.template
        return self.edge[(t.index_of(src), t.index_of(dst))]

    def in_edge_vars(self, node: str) -> List[Var]:
        j = self.template.index_of(node)
        return [self.edge[(i, j)] for i in self.template.predecessors_allowed(j)]

    def out_edge_vars(self, node: str) -> List[Var]:
        i = self.template.index_of(node)
        return [self.edge[(i, j)] for j in self.template.successors_allowed(i)]

    @property
    def reach(self) -> ReachabilityEncoder:
        """Lazily created symbolic walk-indicator encoder (Lemma 1)."""
        if self._reach is None:
            self._reach = ReachabilityEncoder(self.model, self.template, self.edge)
        return self._reach

    def fresh(self) -> int:
        """Monotone counter for unique auxiliary names."""
        self._fresh += 1
        return self._fresh

    # -- solve / decode --------------------------------------------------------

    def solve(
        self,
        backend: str = "auto",
        time_limit: Optional[float] = None,
        mip_rel_gap: Optional[float] = None,
        warm=None,
        options=None,
    ) -> SolveResult:
        return self.model.solve(
            backend=backend, time_limit=time_limit, mip_rel_gap=mip_rel_gap,
            warm=warm, options=options,
        )

    def decode(self, result: SolveResult) -> Architecture:
        """Rebuild the architecture ``e*`` from a solver result."""
        if not result.values:
            raise ValueError(f"cannot decode a result with status {result.status!r}")
        active = [
            e for e, var in self.edge.items() if result.values[var] > 0.5
        ]
        return Architecture(self.template, active)

    def __repr__(self) -> str:
        return (
            f"ArchitectureEncoder({self.template.name!r}, "
            f"{self.model.num_vars} vars, {self.model.num_constrs} constrs)"
        )
