"""Architecture synthesis — the paper's core contribution.

* :func:`synthesize_ilp_mr` — Algorithm 1 (ILP Modulo Reliability) with the
  LEARNCONS constraint learning of Algorithm 2 or the lazy baseline;
* :func:`synthesize_ilp_ar` — Algorithm 3 (ILP with Approximate
  Reliability), the eager polynomial encoding of eqs. 9-11;
* declarative requirement objects for eqs. 2-4.
"""

from .conditions import (
    AdequacyUnderConditions,
    OperatingCondition,
    standard_flight_conditions,
)
from .encoder import ArchitectureEncoder
from .ilp_ar import encode_reliability_ar, synthesize_ilp_ar, template_jointly_implements
from .ilp_mr import synthesize_ilp_mr
from .ilp_tse import encode_reliability_tse, synthesize_ilp_tse, truncation_tail
from .learncons import LearnConsOutcome, estimate_paths, learn_constraints
from .pareto import (
    TradeoffPoint,
    cheapest_under_target,
    explore_tradeoff,
    most_reliable_under_budget,
    pareto_front,
)
from .result import IterationRecord, SynthesisResult
from .spec import (
    ConnectionBound,
    NMinusOneAdequacy,
    ForbidEdge,
    GlobalPowerAdequacy,
    IfConnectedThenConnected,
    IfFeedsThenFed,
    NodeBalance,
    Requirement,
    RequireEdge,
    RequireIncomingEdge,
    SymmetryBreaking,
    SynthesisSpec,
)

__all__ = [
    "AdequacyUnderConditions",
    "ArchitectureEncoder",
    "ConnectionBound",
    "ForbidEdge",
    "GlobalPowerAdequacy",
    "IfConnectedThenConnected",
    "IfFeedsThenFed",
    "IterationRecord",
    "LearnConsOutcome",
    "NMinusOneAdequacy",
    "NodeBalance",
    "OperatingCondition",
    "Requirement",
    "RequireEdge",
    "RequireIncomingEdge",
    "SymmetryBreaking",
    "SynthesisResult",
    "TradeoffPoint",
    "SynthesisSpec",
    "cheapest_under_target",
    "encode_reliability_ar",
    "encode_reliability_tse",
    "estimate_paths",
    "explore_tradeoff",
    "learn_constraints",
    "most_reliable_under_budget",
    "pareto_front",
    "standard_flight_conditions",
    "synthesize_ilp_ar",
    "synthesize_ilp_tse",
    "synthesize_ilp_mr",
    "template_jointly_implements",
    "truncation_tail",
]
