"""ILP with Approximate Reliability — Algorithm 3 of the paper.

GENILP-AR eagerly encodes the reliability requirement using the approximate
algebra (eq. 7) linearized per eqs. 9-11:

* for each sink ``v_i`` and each component type ``j``, auxiliary binaries
  ``x_ijk`` flag "exactly ``k`` components of type ``j`` are connected to
  ``v_i`` and to a source" (eq. 11, via the symbolic walk indicators of
  Lemma 1);
* exactly one ``x_ijk`` is set per (sink, type) pair (eq. 10);
* the reliability requirement becomes the single linear row
  ``sum_jk k * p_j^k * x_ijk <= r*_i`` (eq. 9).

The resulting monolithic ILP is solved once — polynomially many constraints
(O(|V|^3 n) worst case; far fewer here thanks to sparsity, as the paper also
observed) instead of the exponential exact encoding.

Numerical note: eq. 9 mixes coefficients spanning ~18 orders of magnitude
(``p^k`` from 2e-4 down to 3e-19 against ``r* = 1e-11``). The row is scaled
by ``1/r*`` and coefficients below 1e-9 after scaling are dropped; the
discarded mass is bounded by ``#terms * 1e-9 * r*``, far inside the algebra's
own approximation error.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

import networkx as nx

from .. import obs
from ..arch import ArchitectureTemplate
from ..ilp import count_indicators, lin_sum
from ..reliability import approximate_failure, worst_case_failure
from .encoder import ArchitectureEncoder
from .result import SynthesisResult
from .spec import SynthesisSpec

__all__ = ["synthesize_ilp_ar", "encode_reliability_ar", "template_jointly_implements"]

_COEF_DROP = 1e-9  # scaled-coefficient pruning threshold


def template_jointly_implements(
    template: ArchitectureTemplate, sink: str
) -> List[str]:
    """Types whose removal disconnects ``sink`` from every source in the
    *fully configured* template — i.e. ``Pi_j |- F_sink`` holds for every
    configuration, so ILP-AR must enforce ``h_ij >= 1`` for them."""
    graph = nx.DiGraph()
    graph.add_nodes_from(template.name_of(i) for i in range(template.num_nodes))
    for (i, j) in template.allowed_edges:
        graph.add_edge(template.name_of(i), template.name_of(j))
    sources = [template.name_of(i) for i in template.source_indices()]

    def connected_without(ctype: Optional[str]) -> bool:
        removed: Set[str] = (
            {template.name_of(i) for i in template.nodes_of_type(ctype)}
            if ctype is not None
            else set()
        )
        if sink in removed:
            return False
        sub = graph.subgraph(n for n in graph if n not in removed)
        return any(
            s in sub and nx.has_path(sub, s, sink) for s in sources if s not in removed
        )

    if not connected_without(None):
        return []  # sink unreachable even in the full template
    return [t for t in template.type_order if not connected_without(t)]


def encode_reliability_ar(
    enc: ArchitectureEncoder,
    spec: SynthesisSpec,
    walk_budget: Optional[int] = None,
) -> Dict[str, Dict[str, List]]:
    """Add eqs. 9-11 for every sink of interest; returns the indicator map
    ``{sink: {type: [x_ij0, x_ij1, ...]}}`` for introspection/tests."""
    if spec.reliability_target is None:
        raise ValueError("ILP-AR needs spec.reliability_target (r*)")
    r_star = spec.reliability_target
    t = enc.template
    budget = walk_budget if walk_budget is not None else t.num_types
    indicators: Dict[str, Dict[str, List]] = {}

    for sink in spec.sinks():
        sink_idx = t.index_of(sink)
        mandatory = set(template_jointly_implements(t, sink))
        if not mandatory:
            raise ValueError(
                f"sink {sink!r} is unreachable from every source in the template"
            )
        per_type: Dict[str, List] = {}
        reliability_terms = []
        for ctype in t.type_order:
            members = t.nodes_of_type(ctype)
            z_exprs = []
            for w in members:
                z = enc.reach.on_source_sink_walk(w, sink_idx, budget)
                if z is not None:
                    z_exprs.append(z)
            if not z_exprs:
                continue  # type can never lie on a source->sink walk
            xs = count_indicators(
                enc.model,
                z_exprs,
                name=f"x__{sink}__{ctype}__{enc.fresh()}",
                k_max=len(members),
            )
            per_type[ctype] = xs
            if ctype in mandatory:
                # eq. 10 strengthened: jointly implementing types need h >= 1.
                enc.model.add_constr(xs[0] <= 0, tag="ar.mandatory")
            p_j = t.library.type_failure_prob(ctype)
            if p_j <= 0.0 or ctype not in mandatory:
                continue
            for k in range(1, len(xs)):
                coef = k * p_j**k / r_star
                if coef < _COEF_DROP:
                    continue
                reliability_terms.append(coef * xs[k])
        enc.model.add_constr(
            lin_sum(reliability_terms) <= 1.0, tag=f"ar.reliability.{sink}"
        )
        indicators[sink] = per_type
    return indicators


def synthesize_ilp_ar(
    spec: SynthesisSpec,
    backend: str = "auto",
    walk_budget: Optional[int] = None,
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
    rel_method: str = "bdd",
    verify: bool = True,
) -> SynthesisResult:
    """Run ILP-AR: eager encode, single solve, optional exact verification.

    ``verify=True`` reproduces the paper's Fig. 3 reporting: the returned
    result carries both the algebra's ``r~`` and the exactly computed ``r``
    of the synthesized architecture.
    """
    live = obs.run_registry().start(
        "ilp_ar", backend=backend, target=spec.reliability_target,
        phase="encode",
    )
    result = None
    try:
        with obs.log_context(run=live.run_id):
            result = _synthesize_ilp_ar(
                spec, backend, walk_budget, time_limit, mip_rel_gap,
                rel_method, verify, live,
            )
            return result
    finally:
        live.finish(
            status=result.status if result is not None else "error",
            cost=None if result is None or result.architecture is None
            else result.cost,
        )


def _synthesize_ilp_ar(
    spec: SynthesisSpec,
    backend: str,
    walk_budget: Optional[int],
    time_limit: Optional[float],
    mip_rel_gap: Optional[float],
    rel_method: str,
    verify: bool,
    live: "obs.RunHandle",
) -> SynthesisResult:
    with obs.span("ilp_ar", backend=backend) as run_span:
        with obs.span("ilp_ar.encode") as encode_span:
            setup_start = time.perf_counter()
            enc = spec.build_encoder()
            indicators = encode_reliability_ar(enc, spec, walk_budget=walk_budget)
            setup_time = time.perf_counter() - setup_start
            # The eager encoding's size is the story of Table II: how many
            # x_ijk indicator binaries eqs. 9-11 introduced.
            encode_span.set_attr(
                "x_ijk",
                sum(
                    len(xs)
                    for per_type in indicators.values()
                    for xs in per_type.values()
                ),
            )
            encode_span.set_attr("sinks", len(indicators))

        result = SynthesisResult(
            status="limit",
            architecture=None,
            cost=float("inf"),
            reliability=None,
            algorithm="ILP-AR",
            setup_time=setup_time,
            model_stats=enc.model.stats(),
        )
        run_span.set_attr("variables", result.model_stats.get("variables"))
        run_span.set_attr("constraints", result.model_stats.get("constraints"))
        live.update(
            phase="solve",
            variables=result.model_stats.get("variables"),
            constraints=result.model_stats.get("constraints"),
        )
        obs.log(
            "ilp_ar.encoded", setup_time=round(setup_time, 6),
            variables=result.model_stats.get("variables"),
            constraints=result.model_stats.get("constraints"),
        )

        with obs.span("ilp_ar.solve"):
            solve_start = time.perf_counter()
            solved = enc.solve(
                backend=backend, time_limit=time_limit, mip_rel_gap=mip_rel_gap
            )
            result.solver_time = time.perf_counter() - solve_start

        if not solved.is_optimal:
            result.status = solved.status
            run_span.set_attr("status", result.status)
            return result

        arch = enc.decode(solved)
        result.architecture = arch
        result.cost = arch.cost()
        result.status = "optimal"
        run_span.set_attr("status", "optimal")
        run_span.set_attr("cost", result.cost)
        live.update(phase="analysis", cost=result.cost)
        obs.log(
            "ilp_ar.solved", cost=result.cost,
            solver_time=round(result.solver_time, 6),
        )

        if verify:
            with obs.span("ilp_ar.analysis") as verify_span:
                analysis_start = time.perf_counter()
                r, _ = worst_case_failure(arch, spec.sinks(), method=rel_method)
                approx = max(
                    approximate_failure(arch, s).r_tilde for s in spec.sinks()
                )
                result.analysis_time = time.perf_counter() - analysis_start
                result.reliability = r
                result.approx_reliability = approx
                verify_span.set_attr("reliability", r)
                verify_span.set_attr("approx_reliability", approx)
        return result
