"""ILP with Truncated State Enumeration — the "flat" exact baseline.

§II of the paper observes that generating symbolic reliability constraints
"by exhaustive enumeration of failure cases on all possible graph
configurations takes exponential time" — that observation is the paper's
whole motivation for ILP-MR and ILP-AR. This module implements the thing
being argued against, in its practical truncated form, so the benchmark
suite can quantify the blow-up:

For every failure *scenario* ``S`` (a subset of failing components with
``|S| <= order``), a symbolic reachability block decides whether the sink
stays connected when the components of ``S`` are removed from the chosen
configuration. The reliability constraint becomes exact-up-to-truncation:

    sum_S P(exactly S fails) * disconnected_S(v)  +  tail(order)  <=  r*

where ``tail(order)`` is the (constant, conservative) probability mass of
all scenarios larger than the truncation order. The encoding is therefore
*sound*: any accepted configuration truly satisfies ``r <= r*``. It is
also, as the paper predicts, enormous: ``O(C(n_fail, order) * |E| * L)``
auxiliary variables, versus ILP-AR's polynomial count — the point the
ablation benchmark makes.
"""

from __future__ import annotations

import math
import time
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..arch import ReachabilityEncoder
from ..ilp import lin_sum
from ..reliability import worst_case_failure
from .encoder import ArchitectureEncoder
from .result import SynthesisResult
from .spec import SynthesisSpec

__all__ = ["synthesize_ilp_tse", "encode_reliability_tse", "truncation_tail"]


def truncation_tail(probs: List[float], order: int) -> float:
    """P(more than ``order`` components fail) — the mass the encoding
    conservatively charges as certain failure.

    Computed exactly via dynamic programming over the failure-count
    distribution (Poisson-binomial).
    """
    counts = [1.0]  # counts[k] = P(exactly k failures among processed comps)
    for p in probs:
        nxt = [0.0] * (len(counts) + 1)
        for k, mass in enumerate(counts):
            nxt[k] += mass * (1.0 - p)
            nxt[k + 1] += mass * p
        counts = nxt
    return max(0.0, 1.0 - sum(counts[: order + 1]))


def _scenario_weight(
    scenario: FrozenSet[int], failing: List[int], p_of: Dict[int, float]
) -> float:
    """P(exactly the scenario's components fail among all failing ones)."""
    weight = 1.0
    for i in failing:
        weight *= p_of[i] if i in scenario else 1.0 - p_of[i]
    return weight


def encode_reliability_tse(
    enc: ArchitectureEncoder,
    spec: SynthesisSpec,
    order: int = 2,
    walk_budget: Optional[int] = None,
) -> Dict[str, int]:
    """Add the truncated exact reliability encoding for every sink.

    Returns per-sink scenario counts (for the size report). Raises when the
    truncation tail alone already exceeds ``r*`` — the caller must raise
    ``order`` (this is the exponential cliff in action).
    """
    if spec.reliability_target is None:
        raise ValueError("ILP-TSE needs spec.reliability_target (r*)")
    r_star = spec.reliability_target
    t = enc.template
    budget = walk_budget if walk_budget is not None else t.num_types

    failing = [
        i for i in range(t.num_nodes) if t.spec(i).failure_prob > 0.0
    ]
    p_of = {i: t.spec(i).failure_prob for i in failing}
    tail = truncation_tail([p_of[i] for i in failing], order)
    if tail > r_star:
        raise ValueError(
            f"truncation tail {tail:.3e} exceeds r* = {r_star:.3e}; "
            f"raise the enumeration order above {order}"
        )

    # One scenario-restricted reachability block per scenario, shared
    # across sinks.
    scenario_reach: Dict[FrozenSet[int], Dict[int, object]] = {}

    def reach_for(scenario: FrozenSet[int]) -> Dict[int, object]:
        cached = scenario_reach.get(scenario)
        if cached is not None:
            return cached
        filtered = {
            e: var
            for e, var in enc.edge.items()
            if e[0] not in scenario and e[1] not in scenario
        }
        sub_encoder = ReachabilityEncoder(enc.model, t, filtered)
        # Unique aux names across scenarios.
        sub_encoder._gen = enc.fresh() * 100000
        reach = sub_encoder.reach_from_sources(budget)
        scenario_reach[scenario] = reach
        return reach

    sinks = spec.sinks()
    counts: Dict[str, int] = {}
    scenarios = [
        frozenset(c)
        for size in range(1, order + 1)
        for c in combinations(failing, size)
    ]

    for sink in sinks:
        v = t.index_of(sink)
        # Nominal scenario: the sink must be connected when nothing fails.
        nominal = reach_for(frozenset())
        nominal_var = nominal.get(v)
        if nominal_var is None and v not in t.source_indices():
            raise ValueError(f"sink {sink!r} unreachable in the template")
        if nominal_var is not None:
            enc.model.add_constr(nominal_var >= 1, tag="tse.connected")

        terms = []
        used = 0
        for scenario in scenarios:
            weight = _scenario_weight(scenario, failing, p_of)
            if weight <= r_star * 1e-9 / max(1, len(scenarios)):
                continue  # mass below resolution; covered by slack margin
            used += 1
            if v in scenario:
                # Sink itself failed: disconnected with certainty.
                terms.append(weight)
                continue
            reach = reach_for(scenario)
            reach_var = reach.get(v)
            if reach_var is None and v not in t.source_indices():
                terms.append(weight)  # template cannot survive this scenario
            elif reach_var is not None:
                terms.append(weight * (1 - reach_var))
        counts[sink] = used
        enc.model.add_constr(
            lin_sum(terms) * (1.0 / r_star) <= 1.0 - tail / r_star,
            tag=f"tse.reliability.{sink}",
        )
    return counts


def synthesize_ilp_tse(
    spec: SynthesisSpec,
    order: int = 2,
    backend: str = "auto",
    walk_budget: Optional[int] = None,
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
    rel_method: str = "bdd",
    verify: bool = True,
) -> SynthesisResult:
    """One-shot synthesis with the truncated exact encoding.

    Unlike ILP-AR, a feasible result is *guaranteed* to satisfy ``r <= r*``
    (the encoding is conservative); unlike ILP-MR, everything happens in a
    single monolithic solve — at an exponential model-size cost in the
    truncation order.
    """
    setup_start = time.perf_counter()
    enc = spec.build_encoder()
    encode_reliability_tse(enc, spec, order=order, walk_budget=walk_budget)
    setup_time = time.perf_counter() - setup_start

    result = SynthesisResult(
        status="limit",
        architecture=None,
        cost=float("inf"),
        reliability=None,
        algorithm=f"ILP-TSE[order={order}]",
        setup_time=setup_time,
        model_stats=enc.model.stats(),
    )

    solve_start = time.perf_counter()
    solved = enc.solve(backend=backend, time_limit=time_limit, mip_rel_gap=mip_rel_gap)
    result.solver_time = time.perf_counter() - solve_start

    if not solved.is_optimal:
        result.status = solved.status
        return result

    arch = enc.decode(solved)
    result.architecture = arch
    result.cost = arch.cost()
    result.status = "optimal"
    if verify:
        analysis_start = time.perf_counter()
        r, _ = worst_case_failure(arch, spec.sinks(), method=rel_method)
        result.analysis_time = time.perf_counter() - analysis_start
        result.reliability = r
    return result
