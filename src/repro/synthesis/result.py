"""Synthesis results and per-iteration traces.

ILP-MR's value comes from *how* it converges (Fig. 2 of the paper shows the
architecture at each iteration together with its exact reliability), so the
result object records a full iteration trace with time breakdowns matching
the columns of Tables II and III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch import Architecture

__all__ = ["IterationRecord", "SynthesisResult"]


@dataclass
class IterationRecord:
    """One ILP-MR iteration: candidate architecture and its analysis."""

    index: int
    architecture: Optional[Architecture]
    cost: float
    reliability: Optional[float]  # exact worst-case r over sinks of interest
    worst_sink: Optional[str]
    solver_time: float
    analysis_time: float
    learned_constraints: int = 0
    estimated_k: Optional[int] = None

    def summary(self) -> str:
        r = "n/a" if self.reliability is None else f"{self.reliability:.3e}"
        return (
            f"iter {self.index}: cost={self.cost:.6g} r={r} "
            f"(solve {self.solver_time:.2f}s, analysis {self.analysis_time:.2f}s, "
            f"+{self.learned_constraints} constraints)"
        )


@dataclass
class SynthesisResult:
    """Final outcome of ILP-MR / ILP-AR."""

    status: str  # "optimal", "infeasible", "limit"
    architecture: Optional[Architecture]
    cost: float
    reliability: Optional[float]  # exact r of the final architecture
    approx_reliability: Optional[float] = None  # r~ when ILP-AR produced it
    iterations: List[IterationRecord] = field(default_factory=list)
    solver_time: float = 0.0
    analysis_time: float = 0.0
    setup_time: float = 0.0
    model_stats: Dict[str, int] = field(default_factory=dict)
    algorithm: str = ""

    @property
    def feasible(self) -> bool:
        return self.status == "optimal"

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_time(self) -> float:
        return self.setup_time + self.solver_time + self.analysis_time

    def summary(self) -> str:
        lines = [
            f"{self.algorithm or 'synthesis'}: {self.status}"
            f" cost={self.cost:.6g}"
            + ("" if self.reliability is None else f" r={self.reliability:.3e}")
            + (
                ""
                if self.approx_reliability is None
                else f" r~={self.approx_reliability:.3e}"
            )
        ]
        lines.append(
            f"  times: setup {self.setup_time:.2f}s, solver {self.solver_time:.2f}s, "
            f"analysis {self.analysis_time:.2f}s"
        )
        for record in self.iterations:
            lines.append("  " + record.summary())
        return "\n".join(lines)
