"""Cost/reliability design-space exploration.

ARCHEX stands for *architecture exploration*: beyond single-target
synthesis, a designer wants the whole cost-versus-reliability trade-off
curve (the paper's Fig. 3 is three points of it). This module sweeps the
requirement axis, prunes dominated designs, and answers the dual question
— the most reliable architecture under a cost budget — by bisecting the
requirement against the synthesized cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .ilp_ar import synthesize_ilp_ar
from .ilp_mr import synthesize_ilp_mr
from .result import SynthesisResult
from .spec import SynthesisSpec

__all__ = ["TradeoffPoint", "explore_tradeoff", "pareto_front", "cheapest_under_target",
           "most_reliable_under_budget"]

#: Relative tolerance under which two front points count as the same
#: design, applied to cost and reliability alike.
_DEDUP_REL_TOL = 1e-9


@dataclass
class TradeoffPoint:
    """One synthesized design on the requirement sweep."""

    r_star: float
    result: SynthesisResult

    @property
    def cost(self) -> float:
        return self.result.cost

    @property
    def reliability(self) -> Optional[float]:
        return self.result.reliability

    @property
    def feasible(self) -> bool:
        return self.result.feasible


def _synthesize(spec: SynthesisSpec, algorithm: str, **options) -> SynthesisResult:
    if algorithm == "ar":
        return synthesize_ilp_ar(spec, **options)
    if algorithm == "mr":
        return synthesize_ilp_mr(spec, **options)
    raise ValueError(f"unknown algorithm {algorithm!r} (use 'ar' or 'mr')")


def explore_tradeoff(
    spec: SynthesisSpec,
    levels: Sequence[float],
    algorithm: str = "ar",
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    telemetry: Optional[str] = None,
    **options,
) -> List[TradeoffPoint]:
    """Synthesize once per requirement level.

    Levels are sorted loose -> tight (descending failure-probability
    target) by :func:`repro.engine.requirement_sweep` before submission,
    regardless of the caller's ordering, and the returned points follow
    that same sorted order.

    Routed through :mod:`repro.engine`: ``jobs`` fans the levels out over
    a process pool, ``cache_dir`` enables the persistent reliability
    cache, ``telemetry`` appends the batch's JSONL event stream. The
    defaults reproduce the original serial in-process behaviour exactly.

    Infeasible levels are kept in the output (with their infeasible
    results) so callers can see where the template's redundancy runs out.
    """
    if algorithm not in ("ar", "mr"):
        raise ValueError(f"unknown algorithm {algorithm!r} (use 'ar' or 'mr')")
    # Imported lazily: repro.engine itself imports from repro.synthesis.
    from ..engine import requirement_sweep, run_batch, tradeoff_points

    batch = requirement_sweep(spec, levels, algorithm=algorithm, **options)
    outcome = run_batch(
        batch, jobs=jobs, cache_dir=cache_dir, telemetry=telemetry
    )
    return tradeoff_points(outcome.results)


def pareto_front(points: Sequence[TradeoffPoint]) -> List[TradeoffPoint]:
    """Non-dominated (cost, exact reliability) designs, cheapest first.

    A point dominates another when it is no more expensive *and* no less
    reliable (strictly better in at least one). Points without an exact
    reliability (unverified or infeasible) are excluded.
    """
    candidates = [
        p for p in points if p.feasible and p.reliability is not None
    ]
    front: List[TradeoffPoint] = []
    for p in candidates:
        dominated = any(
            (q.cost <= p.cost and q.reliability <= p.reliability)
            and (q.cost < p.cost or q.reliability < p.reliability)
            for q in candidates
            if q is not p
        )
        if not dominated:
            front.append(p)
    front.sort(key=lambda p: (p.cost, p.reliability))
    # Collapse duplicates (same cost and reliability, both compared at the
    # same relative tolerance so near-identical designs coalesce
    # symmetrically in either coordinate).
    deduped: List[TradeoffPoint] = []
    for p in front:
        if deduped and math.isclose(
            deduped[-1].cost, p.cost, rel_tol=_DEDUP_REL_TOL
        ) and math.isclose(
            deduped[-1].reliability, p.reliability, rel_tol=_DEDUP_REL_TOL
        ):
            continue
        deduped.append(p)
    return deduped


def cheapest_under_target(
    points: Sequence[TradeoffPoint], r_star: float
) -> Optional[TradeoffPoint]:
    """Cheapest explored design whose *exact* reliability meets ``r_star``."""
    eligible = [
        p for p in points
        if p.feasible and p.reliability is not None and p.reliability <= r_star
    ]
    return min(eligible, key=lambda p: p.cost) if eligible else None


def most_reliable_under_budget(
    spec: SynthesisSpec,
    budget: float,
    algorithm: str = "ar",
    r_bounds: Tuple[float, float] = (1e-14, 1e-1),
    iterations: int = 20,
    **options,
) -> Optional[TradeoffPoint]:
    """Most reliable design with cost <= ``budget`` (bisection on ``r*``).

    Cost is monotone non-increasing in the requirement ``r*``, so bisecting
    ``log r*`` finds the tightest affordable requirement. Returns None when
    even the loosest requirement exceeds the budget.
    """
    lo, hi = (math.log10(r_bounds[0]), math.log10(r_bounds[1]))

    def attempt(log_r: float) -> TradeoffPoint:
        level_spec = SynthesisSpec(
            template=spec.template,
            requirements=list(spec.requirements),
            reliability_target=10.0**log_r,
            sinks_of_interest=spec.sinks_of_interest,
        )
        result = _synthesize(level_spec, algorithm, **options)
        return TradeoffPoint(r_star=10.0**log_r, result=result)

    best: Optional[TradeoffPoint] = None
    loosest = attempt(hi)
    if not loosest.feasible or loosest.cost > budget:
        return None
    best = loosest

    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        point = attempt(mid)
        if point.feasible and point.cost <= budget:
            best = point
            hi = mid  # afford a tighter requirement
        else:
            lo = mid
        if hi - lo < 0.05:
            break
    return best
